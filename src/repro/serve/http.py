"""Asyncio HTTP/JSON front end over a model snapshot.

``anyopt serve`` runs a :class:`ModelServer`: a single-process asyncio
server (stdlib only — no third-party HTTP framework) whose request
handlers answer from a :class:`~repro.serve.lookup.LookupEngine`.

Endpoints:

- ``POST /predict`` — ``{"sites": [...], "clients": [...]?}`` →
  the typed batch (:meth:`PredictionBatch.to_dict`) plus the serving
  model version.  Malformed requests and empty/undecidable batches
  come back as *structured 4xx JSON errors*, never a 500: a service
  cannot ship a raised ``ReproError`` as its answer.
- ``GET /healthz`` — *readiness*: 200 with snapshot version + age when
  a snapshot is loaded and the server is not draining, else 503 with a
  structured body.
- ``GET /livez`` — *liveness*: 200 whenever the event loop answers,
  even while draining (a live-but-not-ready server must not be
  restarted by its supervisor mid-drain).
- ``GET /metricsz`` — Prometheus text exposition: batch counters plus
  the rolling-window gauges and SLO states.
- ``GET /slozz`` — SLO / burn-rate state as JSON.
- ``GET /modelz`` — the snapshot's :meth:`Snapshot.describe` document.
- ``POST /reloadz`` — hot reload: re-load the snapshot path (atomic
  publish by :func:`~repro.serve.snapshot.write_snapshot` guarantees a
  complete file) and swap the engine.

Request latency is recorded in the bounded
:class:`~repro.obs.live.WindowReservoir`, *not* the batch
``Histogram`` — an always-on server must hold O(1) telemetry, and the
exact batch percentiles are a campaign tool (see
:mod:`repro.runtime.metrics` for the hazard note).

Consistency under reload: handlers capture the engine reference once
per request, and the swap is a single attribute assignment on the
event-loop thread — an in-flight request finishes against the model
version it started with, and the old mmap stays valid until its last
reader drops it.  Nothing is dropped or torn.

Shutdown is graceful: the listener closes first, in-flight requests
drain (bounded by a grace period), then idle keep-alive connections
are closed.
"""

import asyncio
import json
import time
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.core.config import AnycastConfig
from repro.obs.export import render_prometheus
from repro.obs.live import Clock, LiveMetrics
from repro.obs.slo import SloEngine, SloSpec, worst_state
from repro.obs.trace import Tracer
from repro.runtime.metrics import MetricsRegistry
from repro.serve.lookup import LookupEngine
from repro.serve.snapshot import SnapshotError, load_snapshot
from repro.util.errors import ReproError

#: Largest accepted request body; /predict bodies are tiny id lists.
MAX_BODY_BYTES = 32 * 1024 * 1024

#: Default "fast enough" bound for the request-latency SLO.
DEFAULT_LATENCY_THRESHOLD_MS = 250.0

#: Default maximum acceptable snapshot age before freshness pages.
DEFAULT_MAX_SNAPSHOT_AGE_S = 86400.0


def default_slo_specs(
    latency_threshold_ms: float = DEFAULT_LATENCY_THRESHOLD_MS,
    max_snapshot_age_s: float = DEFAULT_MAX_SNAPSHOT_AGE_S,
) -> Tuple[SloSpec, ...]:
    """The server's stock SLOs: 99.9% availability, 99% of requests
    under the latency threshold, and a snapshot-freshness age bound
    (warn at 75% of the budget, page past it)."""
    return (
        SloSpec("availability", "availability", 0.999),
        SloSpec(
            "p99-latency", "latency", 0.99,
            latency_threshold_ms=latency_threshold_ms,
        ),
        SloSpec(
            "snapshot-freshness", "freshness", max_snapshot_age_s,
            warn_burn=0.75, page_burn=1.0,
        ),
    )

_STATUS_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    503: "Service Unavailable",
}


class RequestError(Exception):
    """A structured client error: rendered as JSON, never a 500."""

    def __init__(self, status: int, code: str, message: str, **details):
        super().__init__(message)
        self.status = status
        self.doc = {"error": {"status": status, "code": code, "message": message}}
        if details:
            self.doc["error"].update(details)


class ModelServer:
    """Serves catchment predictions from a snapshot file.

    ``host``/``port`` follow ``asyncio.start_server`` conventions
    (``port=0`` binds an ephemeral port, reported by :attr:`port` once
    started — what the tests and the smoke job use).
    """

    def __init__(
        self,
        snapshot_path: str,
        host: str = "127.0.0.1",
        port: int = 8080,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        slo_specs: Optional[Sequence[SloSpec]] = None,
        clock: Optional[Clock] = None,
    ):
        self.snapshot_path = snapshot_path
        self.host = host
        self.port = port
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self._clock: Clock = clock if clock is not None else time.monotonic
        self.live = LiveMetrics(clock=self._clock)
        self.slo = SloEngine(
            default_slo_specs() if slo_specs is None else slo_specs,
            clock=self._clock,
        )
        for spec in self.slo.specs:
            if spec.kind == "freshness":
                self.slo.set_gauge_source(spec.name, self._snapshot_age)
        self.engine: Optional[LookupEngine] = None
        self._loaded_at: Optional[float] = None
        self._loaded_at_unix: Optional[float] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: set = set()
        self._inflight = 0
        self._requests_served = 0
        self._request_seq = 0
        self._closing = False
        self._drained = asyncio.Event()
        self._drained.set()

    # -- model lifecycle -------------------------------------------------------

    def load(self) -> LookupEngine:
        """Load (or initially reload) the snapshot into a fresh engine."""
        self.engine = LookupEngine(load_snapshot(self.snapshot_path))
        self._loaded_at = self._clock()
        self._loaded_at_unix = time.time()
        return self.engine

    def reload(self) -> Tuple[str, str]:
        """Hot-swap the engine from the (re-published) snapshot path.

        Returns ``(old_version, new_version)``.  On any load failure
        the old engine keeps serving — reload is all-or-nothing.
        """
        old = self.engine.version if self.engine is not None else ""
        engine = LookupEngine(load_snapshot(self.snapshot_path))
        self.engine = engine
        self._loaded_at = self._clock()
        self._loaded_at_unix = time.time()
        self.metrics.counter("serve_reloads").increment()
        return old, engine.version

    def _snapshot_age(self) -> float:
        """Seconds since the serving snapshot was (re)loaded — the
        freshness-SLO gauge.  An unloaded server reports the full
        freshness budget as already spent, so an engine that never
        came up cannot look fresh."""
        if self._loaded_at is None:
            ages = [
                spec.objective * spec.page_burn
                for spec in self.slo.specs
                if spec.kind == "freshness"
            ]
            return max(ages) if ages else 0.0
        return self._clock() - self._loaded_at

    @property
    def ready(self) -> bool:
        """Readiness: a snapshot is loaded and we are not draining."""
        return self.engine is not None and not self._closing

    # -- server lifecycle ------------------------------------------------------

    async def start(self) -> None:
        if self.engine is None:
            self.load()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def shutdown(self, grace_s: float = 10.0) -> None:
        """Stop accepting, drain in-flight requests, close idle
        connections."""
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        try:
            await asyncio.wait_for(self._drained.wait(), grace_s)
        except asyncio.TimeoutError:  # pragma: no cover - only on stuck handlers
            pass
        for writer in list(self._connections):
            writer.close()

    # -- connection handling ---------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        self._connections.add(writer)
        try:
            while not self._closing:
                request = await self._read_request(reader, writer)
                if request is None:
                    break
                method, path, body = request
                self._inflight += 1
                self._drained.clear()
                try:
                    keep_alive = await self._dispatch(writer, method, path, body)
                finally:
                    self._inflight -= 1
                    if self._inflight == 0:
                        self._drained.set()
                if not keep_alive:
                    break
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _read_request(self, reader, writer):
        """One HTTP/1.1 request: ``(method, path, body)`` or None when
        the peer closed the connection."""
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").split()
        if len(parts) != 3:
            await self._send(writer, 400, {
                "error": {"status": 400, "code": "bad-request",
                          "message": "malformed request line"}
            }, keep_alive=False)
            return None
        method, target, _version = parts
        content_length = 0
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    content_length = -1
        if content_length < 0 or content_length > MAX_BODY_BYTES:
            await self._send(writer, 413, {
                "error": {"status": 413, "code": "payload-too-large",
                          "message": f"body must be <= {MAX_BODY_BYTES} bytes"}
            }, keep_alive=False)
            return None
        body = await reader.readexactly(content_length) if content_length else b""
        return method, target.split("?", 1)[0], body

    async def _dispatch(self, writer, method: str, path: str, body: bytes) -> bool:
        self._request_seq += 1
        seq = self._request_seq
        # Latency lands in the bounded windowed reservoir, never the
        # batch Histogram: a server must hold O(1) telemetry.
        reservoir = self.live.reservoir("serve_request_ms")
        loop = asyncio.get_event_loop()
        started = loop.time()
        with self.tracer.span(
            "http-request", key=f"req:{seq}", parent=None, method=method, path=path
        ) as span:
            try:
                status, doc = self._route(method, path, body, span)
            except RequestError as exc:
                status, doc = exc.status, exc.doc
                self.metrics.counter("serve_client_errors").increment()
            except ReproError as exc:
                # Any remaining domain error is still the client's
                # request being unanswerable, not a server fault.
                status = 400
                doc = {"error": {"status": 400, "code": "bad-request",
                                 "message": str(exc)}}
                self.metrics.counter("serve_client_errors").increment()
            span.set_attribute("status", status)
            self._requests_served += 1
            self.metrics.counter("serve_requests").increment()
            elapsed_ms = (loop.time() - started) * 1000.0
            reservoir.observe(elapsed_ms)
            self.live.rate("serve_requests").increment()
            self.slo.record(ok=status < 500, latency_ms=elapsed_ms)
            span.set_attribute("elapsed_ms", elapsed_ms)
            keep_alive = not self._closing
            await self._send(writer, status, doc, keep_alive=keep_alive)
            return keep_alive

    def _route(
        self, method: str, path: str, body: bytes, span
    ) -> Tuple[int, Union[Dict, str]]:
        if path == "/predict":
            if method != "POST":
                raise RequestError(405, "method-not-allowed", "use POST /predict")
            return self._handle_predict(body, span)
        if path == "/healthz":
            if method != "GET":
                raise RequestError(405, "method-not-allowed", "use GET /healthz")
            return self._handle_healthz()
        if path == "/livez":
            if method != "GET":
                raise RequestError(405, "method-not-allowed", "use GET /livez")
            # Liveness never looks at the model: a draining or
            # snapshotless server is alive, just not ready.
            return 200, {"live": True, "inflight": self._inflight}
        if path == "/metricsz":
            if method != "GET":
                raise RequestError(405, "method-not-allowed", "use GET /metricsz")
            return 200, render_prometheus(
                self.metrics.snapshot(),
                live=self.live.snapshot(),
                slo=[status.to_dict() for status in self.slo.evaluate()],
            )
        if path == "/slozz":
            if method != "GET":
                raise RequestError(405, "method-not-allowed", "use GET /slozz")
            statuses = [status.to_dict() for status in self.slo.evaluate()]
            return 200, {
                "overall_state": worst_state([s["state"] for s in statuses]),
                "slos": statuses,
            }
        if path == "/modelz":
            if method != "GET":
                raise RequestError(405, "method-not-allowed", "use GET /modelz")
            return 200, self.engine.snapshot.describe()
        if path == "/reloadz":
            if method != "POST":
                raise RequestError(405, "method-not-allowed", "use POST /reloadz")
            return self._handle_reload()
        raise RequestError(404, "not-found", f"no route for {path}")

    def _handle_healthz(self) -> Tuple[int, Dict]:
        if not self.ready:
            reason = "draining" if self._closing else "no-snapshot-loaded"
            return 503, {
                "status": "unavailable",
                "ready": False,
                "live": True,
                "reason": reason,
                "inflight": self._inflight,
            }
        return 200, {
            "status": "ok",
            "ready": True,
            "live": True,
            "model_version": self.engine.version,
            "snapshot_age_s": round(self._snapshot_age(), 3),
            "snapshot_loaded_unix": self._loaded_at_unix,
            "inflight": self._inflight,
            "requests_served": self._requests_served,
        }

    def _handle_predict(self, body: bytes, span) -> Tuple[int, Dict]:
        doc = self._parse_body(body)
        sites = doc.get("sites")
        if not isinstance(sites, list) or not all(isinstance(s, int) for s in sites):
            raise RequestError(
                400, "bad-request", '"sites" must be a list of site ids'
            )
        if not sites:
            raise RequestError(
                400, "empty-sites", "an anycast configuration needs at least one site"
            )
        clients = doc.get("clients")
        if clients is not None:
            if not isinstance(clients, list) or not all(
                isinstance(c, int) for c in clients
            ):
                raise RequestError(
                    400, "bad-request", '"clients" must be a list of client ids'
                )
            if not clients:
                raise RequestError(
                    400, "empty-clients",
                    'omit "clients" for all known clients; an explicit empty '
                    "batch is unanswerable",
                )

        # The engine reference is captured once: a concurrent hot
        # reload never changes the model mid-request.
        engine = self.engine
        try:
            config = AnycastConfig(site_order=tuple(sites))
            batch = engine.predict(config, clients)
        except SnapshotError as exc:
            raise RequestError(400, "unknown-site", str(exc)) from None
        except ReproError as exc:
            raise RequestError(400, "bad-request", str(exc)) from None

        span.set_attribute("batch_size", len(batch))
        span.set_attribute("decided", batch.decided_count)
        self.live.reservoir("serve_batch_size").observe(float(len(batch)))
        if batch.decided_count == 0:
            # All-quarantined/unmapped: structurally a client-data
            # problem (the model cannot answer for these clients), so
            # 422 with the reason census — not a raised ReproError/500.
            raise RequestError(
                422,
                "no-decided-predictions",
                "no client in the batch has a predictable catchment "
                "under this configuration",
                reasons=batch.counts_by_reason(),
                model_version=engine.version,
            )
        answer = batch.to_dict()
        answer["model_version"] = engine.version
        return 200, answer

    def _handle_reload(self) -> Tuple[int, Dict]:
        try:
            old, new = self.reload()
        except (SnapshotError, OSError) as exc:
            raise RequestError(
                503, "reload-failed",
                f"snapshot reload failed, old model keeps serving: {exc}",
            ) from None
        return 200, {"old_version": old, "model_version": new,
                     "changed": old != new}

    @staticmethod
    def _parse_body(body: bytes) -> Dict:
        try:
            doc = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise RequestError(
                400, "bad-json", f"request body is not valid JSON: {exc}"
            ) from None
        if not isinstance(doc, dict):
            raise RequestError(400, "bad-request", "request body must be an object")
        return doc

    async def _send(
        self, writer, status: int, doc: Union[Dict, str], keep_alive: bool
    ) -> None:
        if isinstance(doc, str):
            # Pre-rendered text bodies (the Prometheus exposition).
            payload = doc.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            payload = json.dumps(doc).encode("utf-8")
            content_type = "application/json"
        head = (
            f"HTTP/1.1 {status} {_STATUS_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()


async def run_server(
    snapshot_path: str,
    host: str = "127.0.0.1",
    port: int = 8080,
    metrics: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    ready=None,
    latency_threshold_ms: float = DEFAULT_LATENCY_THRESHOLD_MS,
    max_snapshot_age_s: float = DEFAULT_MAX_SNAPSHOT_AGE_S,
) -> ModelServer:
    """Boot a :class:`ModelServer` and serve until cancelled.

    ``ready`` is an optional callback invoked with the server once the
    listener is bound (tests use it to learn the ephemeral port).
    Cancellation triggers a graceful shutdown.
    """
    server = ModelServer(
        snapshot_path, host=host, port=port, metrics=metrics, tracer=tracer,
        slo_specs=default_slo_specs(
            latency_threshold_ms=latency_threshold_ms,
            max_snapshot_age_s=max_snapshot_age_s,
        ),
    )
    await server.start()
    if ready is not None:
        ready(server)
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.shutdown()
    return server
