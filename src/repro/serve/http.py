"""Asyncio HTTP/JSON front end over a model snapshot.

``anyopt serve`` runs a :class:`ModelServer`: a single-process asyncio
server (stdlib only — no third-party HTTP framework) whose request
handlers answer from a :class:`~repro.serve.lookup.LookupEngine`.

Endpoints:

- ``POST /predict`` — ``{"sites": [...], "clients": [...]?}`` →
  the typed batch (:meth:`PredictionBatch.to_dict`) plus the serving
  model version.  Malformed requests and empty/undecidable batches
  come back as *structured 4xx JSON errors*, never a 500: a service
  cannot ship a raised ``ReproError`` as its answer.
- ``GET /healthz`` — *readiness*: 200 with snapshot version + age when
  a snapshot is loaded and the server is not draining, else 503 with a
  structured body.
- ``GET /livez`` — *liveness*: 200 whenever the event loop answers,
  even while draining (a live-but-not-ready server must not be
  restarted by its supervisor mid-drain).
- ``GET /metricsz`` — Prometheus text exposition: batch counters plus
  the rolling-window gauges and SLO states.
- ``GET /slozz`` — SLO / burn-rate state as JSON.
- ``GET /modelz`` — the snapshot's :meth:`Snapshot.describe` document
  (plus the reload-on-publish watcher state when ``--watch`` is on).
- ``POST /reloadz`` — hot reload: re-load the snapshot path (atomic
  publish by :func:`~repro.serve.snapshot.write_snapshot` guarantees a
  complete file) and swap the engine.

Resilience (see :mod:`repro.serve.guard` / :mod:`repro.serve.watch`):
every request runs under per-phase deadlines (idle keep-alive reap,
header read, body read, handler, response drain), connections and
in-flight requests are admission-capped with structured ``503`` /
``429 Retry-After`` shedding, an overlong request line or header
section answers ``400``/``431`` instead of killing the connection
task, and ``--watch`` runs a reload-on-publish watcher whose
``load_snapshot`` happens off-loop in a worker thread.  A dedicated
``shed-rate`` SLO (stream ``"sheds"``) tracks the shed fraction
separately from request availability.

Request latency is recorded in the bounded
:class:`~repro.obs.live.WindowReservoir`, *not* the batch
``Histogram`` — an always-on server must hold O(1) telemetry, and the
exact batch percentiles are a campaign tool (see
:mod:`repro.runtime.metrics` for the hazard note).

Consistency under reload: handlers capture the engine reference once
per request, and the swap is a single attribute assignment on the
event-loop thread — an in-flight request finishes against the model
version it started with, and the old mmap stays valid until its last
reader drops it.  Nothing is dropped or torn.

Shutdown is graceful but bounded: the listener closes first, in-flight
requests drain within a grace period, then any still-stuck handler
tasks are cancelled and their transports aborted — the process can
always exit.
"""

import asyncio
import contextlib
import json
import math
import socket
import time
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.core.config import AnycastConfig
from repro.obs.export import render_prometheus
from repro.obs.live import Clock, LiveMetrics
from repro.obs.slo import SloEngine, SloSpec, worst_state
from repro.obs.trace import Tracer
from repro.runtime.metrics import MetricsRegistry
from repro.serve.guard import GuardConfig, GuardTimeout, ServeGuard
from repro.serve.lookup import LookupEngine
from repro.serve.snapshot import SnapshotError, load_snapshot
from repro.serve.watch import SnapshotWatcher, WatchConfig
from repro.util.errors import ReproError

#: Largest accepted request body; /predict bodies are tiny id lists.
MAX_BODY_BYTES = 32 * 1024 * 1024

#: Default "fast enough" bound for the request-latency SLO.
DEFAULT_LATENCY_THRESHOLD_MS = 250.0

#: Default maximum acceptable snapshot age before freshness pages.
DEFAULT_MAX_SNAPSHOT_AGE_S = 86400.0

#: Default objective for the shed-rate SLO: at most 1% of offered
#: requests may be load-shed before the server is paged.
DEFAULT_SHED_RATE_OBJECTIVE = 0.99


def default_slo_specs(
    latency_threshold_ms: float = DEFAULT_LATENCY_THRESHOLD_MS,
    max_snapshot_age_s: float = DEFAULT_MAX_SNAPSHOT_AGE_S,
) -> Tuple[SloSpec, ...]:
    """The server's stock SLOs: 99.9% availability, 99% of requests
    under the latency threshold, a snapshot-freshness age bound
    (warn at 75% of the budget, page past it), and a shed-rate bound
    fed from the admission-control stream (good = not shed)."""
    return (
        SloSpec("availability", "availability", 0.999),
        SloSpec(
            "p99-latency", "latency", 0.99,
            latency_threshold_ms=latency_threshold_ms,
        ),
        SloSpec(
            "snapshot-freshness", "freshness", max_snapshot_age_s,
            warn_burn=0.75, page_burn=1.0,
        ),
        SloSpec(
            "shed-rate", "availability", DEFAULT_SHED_RATE_OBJECTIVE,
            stream="sheds",
        ),
    )

_STATUS_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class RequestError(Exception):
    """A structured client error: rendered as JSON, never a 500."""

    def __init__(self, status: int, code: str, message: str, **details):
        super().__init__(message)
        self.status = status
        self.doc = {"error": {"status": status, "code": code, "message": message}}
        if details:
            self.doc["error"].update(details)


class ModelServer:
    """Serves catchment predictions from a snapshot file.

    ``host``/``port`` follow ``asyncio.start_server`` conventions
    (``port=0`` binds an ephemeral port, reported by :attr:`port` once
    started — what the tests and the smoke job use).

    ``guard`` is the resilience knob set (defaults applied when None);
    ``watch`` enables the reload-on-publish watcher.  ``chaos_hook``
    (an optional ``async hook(method, path)``) is awaited before every
    route handler — the chaos harness and the guard tests use it to
    make handlers slow or hang on demand.
    """

    def __init__(
        self,
        snapshot_path: str,
        host: str = "127.0.0.1",
        port: int = 8080,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        slo_specs: Optional[Sequence[SloSpec]] = None,
        clock: Optional[Clock] = None,
        guard: Optional[GuardConfig] = None,
        watch: Optional[WatchConfig] = None,
    ):
        self.snapshot_path = snapshot_path
        self.host = host
        self.port = port
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self._clock: Clock = clock if clock is not None else time.monotonic
        self.live = LiveMetrics(clock=self._clock)
        self.slo = SloEngine(
            default_slo_specs() if slo_specs is None else slo_specs,
            clock=self._clock,
        )
        for spec in self.slo.specs:
            if spec.kind == "freshness":
                self.slo.set_gauge_source(spec.name, self._snapshot_age)
        self.guard = ServeGuard(
            guard if guard is not None else GuardConfig(), self.metrics
        )
        self.watch_config = watch
        self.watcher: Optional[SnapshotWatcher] = None
        self._watch_task: Optional[asyncio.Task] = None
        self.chaos_hook = None
        self.engine: Optional[LookupEngine] = None
        self._loaded_at: Optional[float] = None
        self._loaded_at_unix: Optional[float] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: set = set()
        self._conn_tasks: Dict = {}
        self._reload_lock: Optional[asyncio.Lock] = None
        self._inflight = 0
        self._requests_served = 0
        self._request_seq = 0
        self._closing = False
        self._drained = asyncio.Event()
        self._drained.set()

    # -- model lifecycle -------------------------------------------------------

    def load(self) -> LookupEngine:
        """Load (or initially reload) the snapshot into a fresh engine."""
        self.engine = LookupEngine(load_snapshot(self.snapshot_path))
        self._loaded_at = self._clock()
        self._loaded_at_unix = time.time()
        return self.engine

    def reload(self) -> Tuple[str, str]:
        """Hot-swap the engine from the (re-published) snapshot path.

        Returns ``(old_version, new_version)``.  On any load failure
        the old engine keeps serving — reload is all-or-nothing.
        Synchronous (blocks the caller); the serving paths use
        :meth:`reload_async`.
        """
        old = self.engine.version if self.engine is not None else ""
        engine = LookupEngine(load_snapshot(self.snapshot_path))
        self._swap(engine)
        return old, engine.version

    async def reload_async(self) -> Tuple[str, str]:
        """Hot-swap like :meth:`reload`, but the load — checksum read,
        mmap, engine index build — runs off-loop in a worker thread so
        a multi-GB snapshot never stalls in-flight requests.  A lock
        serializes concurrent reloads (watcher poll, ``POST /reloadz``,
        SIGHUP); the swap itself is one attribute assignment on the
        event-loop thread."""
        if self._reload_lock is None:
            self._reload_lock = asyncio.Lock()
        async with self._reload_lock:
            old = self.engine.version if self.engine is not None else ""
            engine = await asyncio.to_thread(
                lambda: LookupEngine(load_snapshot(self.snapshot_path))
            )
            self._swap(engine)
            return old, engine.version

    def _swap(self, engine: LookupEngine) -> None:
        self.engine = engine
        self._loaded_at = self._clock()
        self._loaded_at_unix = time.time()
        self.metrics.counter("serve_reloads").increment()

    def _snapshot_age(self) -> float:
        """Seconds since the serving snapshot was (re)loaded — the
        freshness-SLO gauge.  An unloaded server reports the full
        freshness budget as already spent, so an engine that never
        came up cannot look fresh."""
        if self._loaded_at is None:
            ages = [
                spec.objective * spec.page_burn
                for spec in self.slo.specs
                if spec.kind == "freshness"
            ]
            return max(ages) if ages else 0.0
        return self._clock() - self._loaded_at

    @property
    def ready(self) -> bool:
        """Readiness: a snapshot is loaded and we are not draining."""
        return self.engine is not None and not self._closing

    @property
    def open_connections(self) -> int:
        """Live connection count (the chaos harness asserts this is
        zero after shutdown)."""
        return len(self._connections)

    # -- server lifecycle ------------------------------------------------------

    async def start(self) -> None:
        if self.engine is None:
            self.load()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.watch_config is not None:
            self.watcher = SnapshotWatcher(self, self.watch_config)
            self._watch_task = asyncio.ensure_future(self.watcher.run())

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def shutdown(self, grace_s: float = 10.0) -> None:
        """Stop accepting, drain in-flight requests (bounded by
        ``grace_s``), close idle connections — and if the grace period
        expires with handlers still stuck, cancel their connection
        tasks and abort the transports so the process can always
        exit."""
        self._closing = True
        if self._watch_task is not None:
            self._watch_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._watch_task
            self._watch_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        try:
            await asyncio.wait_for(self._drained.wait(), grace_s)
        except asyncio.TimeoutError:
            self.metrics.counter("serve_drain_forced").increment()
            for task in list(self._conn_tasks.values()):
                task.cancel()
            for writer in list(self._connections):
                with contextlib.suppress(Exception):
                    writer.transport.abort()
        for writer in list(self._connections):
            writer.close()
        leftovers = [t for t in self._conn_tasks.values() if not t.done()]
        if leftovers:
            await asyncio.gather(*leftovers, return_exceptions=True)

    # -- connection handling ---------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        if not self.guard.admit_connection(len(self._connections)):
            # Over the connection cap: shed with a structured 503 and
            # close — this client must reconnect after Retry-After.
            self.slo.record(ok=False, stream="sheds")
            try:
                await self._send(
                    writer, 503,
                    self.guard.shed_doc(
                        503, "shed-connection",
                        "connection limit reached, retry later",
                    ),
                    keep_alive=False, retry_after=True,
                )
            except (ConnectionError, GuardTimeout):
                pass
            finally:
                writer.close()
                with contextlib.suppress(Exception):
                    await writer.wait_closed()
            return
        self._connections.add(writer)
        self._conn_tasks[writer] = asyncio.current_task()
        self._tune_transport(writer)
        try:
            while not self._closing:
                request = await self._read_request(reader, writer)
                if request is None:
                    break
                method, path, body = request
                keep_alive = await self._dispatch(writer, method, path, body)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except GuardTimeout:
            # A write deadline fired mid-response; the transport was
            # already aborted by _send.
            pass
        finally:
            self._conn_tasks.pop(writer, None)
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    def _tune_transport(self, writer) -> None:
        cfg = self.guard.config
        if cfg.so_sndbuf is not None:
            sock = writer.transport.get_extra_info("socket")
            if sock is not None:
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, cfg.so_sndbuf)
        if cfg.write_high_water is not None:
            writer.transport.set_write_buffer_limits(high=cfg.write_high_water)

    async def _read_request(self, reader, writer):
        """One HTTP/1.1 request: ``(method, path, body)`` or None when
        the peer closed the connection (or a read deadline / stream
        limit ended it — answered in place, never a crashed task)."""
        cfg = self.guard.config
        # Deadline fast path: when the bytes a read needs already sit
        # in the stream buffer (one-segment requests, pipelining), the
        # read completes without touching the loop — arming a timer
        # for it would be pure hot-path overhead, so skip it.
        buffered = getattr(reader, "_buffer", b"")
        try:
            if b"\n" in buffered:
                line = await reader.readline()
            else:
                line = await self.guard.timed(
                    reader.readline(), cfg.idle_timeout_s, "idle"
                )
        except GuardTimeout:
            # Idle keep-alive reaper: no request started, close quietly.
            return None
        except ValueError:
            # readline() overran the stream limit: an absurd request
            # line.  Answer 400 and close instead of crashing the task.
            await self._send_limit_error(
                writer, 400, "request-line-too-long",
                "request line exceeds the server's line limit",
            )
            return None
        if not line:
            return None
        parts = line.decode("latin-1").split()
        if len(parts) != 3:
            await self._send(writer, 400, {
                "error": {"status": 400, "code": "bad-request",
                          "message": "malformed request line"}
            }, keep_alive=False)
            return None
        method, target, _version = parts
        try:
            if b"\r\n\r\n" in getattr(reader, "_buffer", b""):
                # The whole header section (terminated by a blank
                # line) is already buffered: no deadline needed.
                content_length = await self._read_headers(reader)
            else:
                content_length = await self.guard.timed(
                    self._read_headers(reader), cfg.header_timeout_s, "header"
                )
        except GuardTimeout as exc:
            # Slow-loris: the header section blew its deadline.
            await self._send_limit_error(writer, 408, "header-timeout", str(exc))
            return None
        except RequestError as exc:
            await self._send_limit_error(
                writer, exc.status, exc.doc["error"]["code"], str(exc)
            )
            return None
        if content_length < 0 or content_length > MAX_BODY_BYTES:
            await self._send(writer, 413, {
                "error": {"status": 413, "code": "payload-too-large",
                          "message": f"body must be <= {MAX_BODY_BYTES} bytes"}
            }, keep_alive=False)
            return None
        body = b""
        if content_length:
            try:
                if len(getattr(reader, "_buffer", b"")) >= content_length:
                    body = await reader.readexactly(content_length)
                else:
                    body = await self.guard.timed(
                        reader.readexactly(content_length),
                        cfg.body_timeout_s, "body",
                    )
            except GuardTimeout as exc:
                await self._send_limit_error(writer, 408, "body-timeout", str(exc))
                return None
            except asyncio.IncompleteReadError:
                # Torn body: the peer quit mid-upload, nothing to answer.
                self.metrics.counter("serve_torn_bodies").increment()
                return None
        return method, target.split("?", 1)[0], body

    async def _read_headers(self, reader) -> int:
        """Read the header section; returns the Content-Length.  The
        caller bounds the whole section with one header deadline."""
        cfg = self.guard.config
        content_length = 0
        count = 0
        while True:
            try:
                header = await reader.readline()
            except ValueError:
                raise RequestError(
                    431, "header-too-large",
                    "a header line exceeds the server's line limit",
                ) from None
            if header in (b"\r\n", b"\n", b""):
                return content_length
            count += 1
            if count > cfg.max_header_count:
                raise RequestError(
                    431, "too-many-headers",
                    f"request exceeds {cfg.max_header_count} header lines",
                )
            name, _, value = header.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    content_length = -1

    async def _send_limit_error(
        self, writer, status: int, code: str, message: str
    ) -> None:
        self.metrics.counter("serve_client_errors").increment()
        await self._send(writer, status, {
            "error": {"status": status, "code": code, "message": message}
        }, keep_alive=False)

    async def _dispatch(self, writer, method: str, path: str, body: bytes) -> bool:
        self._request_seq += 1
        seq = self._request_seq
        # Latency lands in the bounded windowed reservoir, never the
        # batch Histogram: a server must hold O(1) telemetry.
        reservoir = self.live.reservoir("serve_request_ms")
        loop = asyncio.get_running_loop()
        started = loop.time()
        with self.tracer.span(
            "http-request", key=f"req:{seq}", parent=None, method=method, path=path
        ) as span:
            admitted = self.guard.admit_request(self._inflight)
            # Every offered request feeds the shed-rate SLO: good
            # means "not load-shed".
            self.slo.record(ok=admitted, stream="sheds")
            retry_after = not admitted
            if admitted:
                self._inflight += 1
                self._drained.clear()
            try:
                if not admitted:
                    status, doc = 429, self.guard.shed_doc(
                        429, "shed-inflight",
                        "in-flight request limit reached, back off and retry",
                    )
                    span.set_attribute("shed", True)
                else:
                    try:
                        status, doc = await self.guard.timed(
                            self._route(method, path, body, span),
                            self.guard.config.handler_timeout_s,
                            "handler",
                        )
                    except GuardTimeout as exc:
                        # The handler blew its deadline: a server
                        # fault, shed so the client backs off.
                        status, doc = 503, self.guard.shed_doc(
                            503, "handler-timeout", str(exc)
                        )
                        retry_after = True
                    except RequestError as exc:
                        status, doc = exc.status, exc.doc
                        self.metrics.counter("serve_client_errors").increment()
                    except ReproError as exc:
                        # Any remaining domain error is still the
                        # client's request being unanswerable, not a
                        # server fault.
                        status = 400
                        doc = {"error": {"status": 400, "code": "bad-request",
                                         "message": str(exc)}}
                        self.metrics.counter("serve_client_errors").increment()
                span.set_attribute("status", status)
                self._requests_served += 1
                self.metrics.counter("serve_requests").increment()
                elapsed_ms = (loop.time() - started) * 1000.0
                reservoir.observe(elapsed_ms)
                self.live.rate("serve_requests").increment()
                self.slo.record(ok=status < 500, latency_ms=elapsed_ms)
                span.set_attribute("elapsed_ms", elapsed_ms)
                keep_alive = not self._closing
                await self._send(
                    writer, status, doc,
                    keep_alive=keep_alive, retry_after=retry_after,
                )
                return keep_alive
            finally:
                # In-flight covers the response flush too: graceful
                # drain must wait for written answers, and a stalled
                # write holds an admission slot until its deadline.
                if admitted:
                    self._inflight -= 1
                    if self._inflight == 0:
                        self._drained.set()

    async def _route(
        self, method: str, path: str, body: bytes, span
    ) -> Tuple[int, Union[Dict, str]]:
        if self.chaos_hook is not None:
            await self.chaos_hook(method, path)
        if path == "/predict":
            if method != "POST":
                raise RequestError(405, "method-not-allowed", "use POST /predict")
            return self._handle_predict(body, span)
        if path == "/healthz":
            if method != "GET":
                raise RequestError(405, "method-not-allowed", "use GET /healthz")
            return self._handle_healthz()
        if path == "/livez":
            if method != "GET":
                raise RequestError(405, "method-not-allowed", "use GET /livez")
            # Liveness never looks at the model: a draining or
            # snapshotless server is alive, just not ready.
            return 200, {"live": True, "inflight": self._inflight}
        if path == "/metricsz":
            if method != "GET":
                raise RequestError(405, "method-not-allowed", "use GET /metricsz")
            return 200, render_prometheus(
                self.metrics.snapshot(),
                live=self.live.snapshot(),
                slo=[status.to_dict() for status in self.slo.evaluate()],
            )
        if path == "/slozz":
            if method != "GET":
                raise RequestError(405, "method-not-allowed", "use GET /slozz")
            statuses = [status.to_dict() for status in self.slo.evaluate()]
            return 200, {
                "overall_state": worst_state([s["state"] for s in statuses]),
                "slos": statuses,
            }
        if path == "/modelz":
            if method != "GET":
                raise RequestError(405, "method-not-allowed", "use GET /modelz")
            doc = self.engine.snapshot.describe()
            if self.watcher is not None:
                doc["watch"] = self.watcher.describe()
            return 200, doc
        if path == "/reloadz":
            if method != "POST":
                raise RequestError(405, "method-not-allowed", "use POST /reloadz")
            return await self._handle_reload()
        raise RequestError(404, "not-found", f"no route for {path}")

    def _handle_healthz(self) -> Tuple[int, Dict]:
        if not self.ready:
            reason = "draining" if self._closing else "no-snapshot-loaded"
            return 503, {
                "status": "unavailable",
                "ready": False,
                "live": True,
                "reason": reason,
                "inflight": self._inflight,
            }
        return 200, {
            "status": "ok",
            "ready": True,
            "live": True,
            "model_version": self.engine.version,
            "snapshot_age_s": round(self._snapshot_age(), 3),
            "snapshot_loaded_unix": self._loaded_at_unix,
            "inflight": self._inflight,
            "requests_served": self._requests_served,
        }

    def _handle_predict(self, body: bytes, span) -> Tuple[int, Dict]:
        doc = self._parse_body(body)
        sites = doc.get("sites")
        if not isinstance(sites, list) or not all(isinstance(s, int) for s in sites):
            raise RequestError(
                400, "bad-request", '"sites" must be a list of site ids'
            )
        if not sites:
            raise RequestError(
                400, "empty-sites", "an anycast configuration needs at least one site"
            )
        clients = doc.get("clients")
        if clients is not None:
            if not isinstance(clients, list) or not all(
                isinstance(c, int) for c in clients
            ):
                raise RequestError(
                    400, "bad-request", '"clients" must be a list of client ids'
                )
            if not clients:
                raise RequestError(
                    400, "empty-clients",
                    'omit "clients" for all known clients; an explicit empty '
                    "batch is unanswerable",
                )

        # The engine reference is captured once: a concurrent hot
        # reload never changes the model mid-request.
        engine = self.engine
        try:
            config = AnycastConfig(site_order=tuple(sites))
            batch = engine.predict(config, clients)
        except SnapshotError as exc:
            raise RequestError(400, "unknown-site", str(exc)) from None
        except ReproError as exc:
            raise RequestError(400, "bad-request", str(exc)) from None

        span.set_attribute("batch_size", len(batch))
        span.set_attribute("decided", batch.decided_count)
        self.live.reservoir("serve_batch_size").observe(float(len(batch)))
        if batch.decided_count == 0:
            # All-quarantined/unmapped: structurally a client-data
            # problem (the model cannot answer for these clients), so
            # 422 with the reason census — not a raised ReproError/500.
            raise RequestError(
                422,
                "no-decided-predictions",
                "no client in the batch has a predictable catchment "
                "under this configuration",
                reasons=batch.counts_by_reason(),
                model_version=engine.version,
            )
        answer = batch.to_dict()
        answer["model_version"] = engine.version
        return 200, answer

    async def _handle_reload(self) -> Tuple[int, Dict]:
        try:
            old, new = await self.reload_async()
        except (SnapshotError, OSError) as exc:
            raise RequestError(
                503, "reload-failed",
                f"snapshot reload failed, old model keeps serving: {exc}",
            ) from None
        return 200, {"old_version": old, "model_version": new,
                     "changed": old != new}

    @staticmethod
    def _parse_body(body: bytes) -> Dict:
        try:
            doc = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise RequestError(
                400, "bad-json", f"request body is not valid JSON: {exc}"
            ) from None
        if not isinstance(doc, dict):
            raise RequestError(400, "bad-request", "request body must be an object")
        return doc

    async def _send(
        self,
        writer,
        status: int,
        doc: Union[Dict, str],
        keep_alive: bool,
        retry_after: bool = False,
    ) -> None:
        if isinstance(doc, str):
            # Pre-rendered text bodies (the Prometheus exposition).
            payload = doc.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            payload = json.dumps(doc).encode("utf-8")
            content_type = "application/json"
        retry = ""
        if retry_after:
            retry = (
                f"Retry-After: "
                f"{max(1, math.ceil(self.guard.config.retry_after_s))}\r\n"
            )
        head = (
            f"HTTP/1.1 {status} {_STATUS_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"{retry}"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + payload)
        timeout = self.guard.config.write_timeout_s
        if timeout is None or writer.transport.get_write_buffer_size() == 0:
            # Fast path: the response already hit the socket, drain
            # cannot wait and needs no deadline.
            await writer.drain()
            return
        try:
            await self.guard.timed(writer.drain(), timeout, "write")
        except GuardTimeout:
            # A never-reading peer: abort so buffered bytes cannot pin
            # the connection or block graceful drain.
            writer.transport.abort()
            raise


async def run_server(
    snapshot_path: str,
    host: str = "127.0.0.1",
    port: int = 8080,
    metrics: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    ready=None,
    latency_threshold_ms: float = DEFAULT_LATENCY_THRESHOLD_MS,
    max_snapshot_age_s: float = DEFAULT_MAX_SNAPSHOT_AGE_S,
    guard: Optional[GuardConfig] = None,
    watch: Optional[WatchConfig] = None,
) -> ModelServer:
    """Boot a :class:`ModelServer` and serve until cancelled.

    ``ready`` is an optional callback invoked with the server once the
    listener is bound (tests use it to learn the ephemeral port).
    Cancellation triggers a graceful shutdown.
    """
    server = ModelServer(
        snapshot_path, host=host, port=port, metrics=metrics, tracer=tracer,
        slo_specs=default_slo_specs(
            latency_threshold_ms=latency_threshold_ms,
            max_snapshot_age_s=max_snapshot_age_s,
        ),
        guard=guard,
        watch=watch,
    )
    await server.start()
    if ready is not None:
        ready(server)
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.shutdown()
    return server
