"""Counters, timers, and per-phase summaries for measurement campaigns.

Every :class:`~repro.measurement.orchestrator.Orchestrator` owns a
:class:`MetricsRegistry`; the BGP engine, the convergence cache, and
the experiment drivers record into it.  The registry answers the
operational questions a campaign raises — how many BGP experiments
ran, how many convergences were served from cache, how much wall time
each phase took — without perturbing the simulation itself (metrics
never feed back into any seeded RNG stream).

All mutation is thread-safe, because pooled campaign executors update
counters from worker threads.
"""

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List


class Counter:
    """A named, thread-safe, monotonically increasing counter."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    @property
    def value(self) -> int:
        return self._value

    def increment(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount


class Timer:
    """Accumulated wall time over any number of timed sections."""

    __slots__ = ("name", "_total_s", "_count", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._total_s = 0.0
        self._count = 0
        self._lock = threading.Lock()

    @property
    def total_seconds(self) -> float:
        return self._total_s

    @property
    def count(self) -> int:
        return self._count

    @contextmanager
    def time(self):
        """Time one section: ``with timer.time(): ...``."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            elapsed = time.perf_counter() - start
            with self._lock:
                self._total_s += elapsed
                self._count += 1

    def add(self, seconds: float, count: int = 1) -> None:
        """Fold externally timed sections (e.g. sections a worker
        process measured in its own registry) into this timer."""
        with self._lock:
            self._total_s += seconds
            self._count += count


@dataclass
class PhaseRecord:
    """One completed campaign phase: wall time plus counter deltas."""

    name: str
    wall_seconds: float
    counter_deltas: Dict[str, int] = field(default_factory=dict)


class MetricsRegistry:
    """Get-or-create registry of counters, timers, and phase records."""

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._timers: Dict[str, Timer] = {}
        self._phases: List[PhaseRecord] = []
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        with self._lock:
            if name not in self._counters:
                self._counters[name] = Counter(name)
            return self._counters[name]

    def timer(self, name: str) -> Timer:
        with self._lock:
            if name not in self._timers:
                self._timers[name] = Timer(name)
            return self._timers[name]

    @property
    def phases(self) -> List[PhaseRecord]:
        return list(self._phases)

    def _counter_values(self) -> Dict[str, int]:
        with self._lock:
            return {name: c.value for name, c in self._counters.items()}

    @contextmanager
    def phase(self, name: str):
        """Record one campaign phase: its wall time and how much each
        counter advanced while it ran.  Phases may repeat (each entry
        appends a fresh record) and may nest."""
        before = self._counter_values()
        start = time.perf_counter()
        try:
            yield self
        finally:
            wall = time.perf_counter() - start
            after = self._counter_values()
            deltas = {
                key: after[key] - before.get(key, 0)
                for key in after
                if after[key] - before.get(key, 0)
            }
            with self._lock:
                self._phases.append(PhaseRecord(name, wall, deltas))

    def merge_deltas(self, counters: Dict[str, int], timers: Dict[str, Dict]) -> None:
        """Fold another registry's movement into this one.

        Process-pool campaign workers record into their own registry;
        the executor ships each task's counter and timer deltas back
        and merges them here, so ``--stats`` reads the same regardless
        of which pool (or none) ran the campaign.  Merging happens
        inside the surrounding :meth:`phase`, so phase counter deltas
        include worker activity too.
        """
        for name, delta in counters.items():
            if delta:
                self.counter(name).increment(delta)
        for name, t in timers.items():
            if t.get("count"):
                self.timer(name).add(t.get("total_seconds", 0.0), t["count"])

    # -- reporting ----------------------------------------------------------

    def snapshot(self) -> Dict:
        """A plain-dict view of everything recorded so far."""
        return {
            "counters": self._counter_values(),
            "timers": {
                name: {"total_seconds": t.total_seconds, "count": t.count}
                for name, t in self._timers.items()
            },
            "phases": [
                {
                    "name": p.name,
                    "wall_seconds": p.wall_seconds,
                    "counter_deltas": dict(p.counter_deltas),
                }
                for p in self._phases
            ],
        }

    def render(self) -> str:
        """Human-readable summary (the CLI's ``--stats`` section)."""
        snap = self.snapshot()
        lines = ["campaign stats:"]
        for name in sorted(snap["counters"]):
            lines.append(f"  {name}: {snap['counters'][name]}")
        for name in sorted(snap["timers"]):
            t = snap["timers"][name]
            lines.append(
                f"  {name}: {t['total_seconds']:.3f}s over {t['count']} section(s)"
            )
        if snap["phases"]:
            lines.append("  phases:")
            for p in snap["phases"]:
                deltas = ", ".join(
                    f"{k}+{v}" for k, v in sorted(p["counter_deltas"].items())
                )
                suffix = f" ({deltas})" if deltas else ""
                lines.append(f"    {p['name']}: {p['wall_seconds']:.3f}s{suffix}")
        return "\n".join(lines)
