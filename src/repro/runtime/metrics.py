"""Counters, timers, histograms, and per-phase summaries for campaigns.

Every :class:`~repro.measurement.orchestrator.Orchestrator` owns a
:class:`MetricsRegistry`; the BGP engine, the convergence cache, and
the experiment drivers record into it.  The registry answers the
operational questions a campaign raises — how many BGP experiments
ran, how many convergences were served from cache, how much wall time
each phase took — without perturbing the simulation itself (metrics
never feed back into any seeded RNG stream).

All mutation is thread-safe, because pooled campaign executors update
counters from worker threads.
"""

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.util.stats import percentile


class Counter:
    """A named, thread-safe, monotonically increasing counter."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def increment(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount


class Timer:
    """Accumulated wall time over any number of timed sections."""

    __slots__ = ("name", "_total_s", "_count", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._total_s = 0.0
        self._count = 0
        self._lock = threading.Lock()

    @property
    def total_seconds(self) -> float:
        with self._lock:
            return self._total_s

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def summary(self) -> Dict:
        """Both accumulators read under one lock, so a snapshot taken
        mid-update never pairs a new total with a stale count."""
        with self._lock:
            return {"total_seconds": self._total_s, "count": self._count}

    @contextmanager
    def time(self):
        """Time one section: ``with timer.time(): ...``."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            elapsed = time.perf_counter() - start
            with self._lock:
                self._total_s += elapsed
                self._count += 1

    def add(self, seconds: float, count: int = 1) -> None:
        """Fold externally timed sections (e.g. sections a worker
        process measured in its own registry) into this timer."""
        with self._lock:
            self._total_s += seconds
            self._count += count


class Histogram:
    """A named, thread-safe distribution of float observations.

    Keeps every raw value (campaign cardinalities are small — one
    observation per experiment or convergence run), so summaries can
    report exact percentiles and worker deltas can ship the raw tail
    of the value list.  Percentile math is order-independent, which is
    what keeps summaries identical across executors even though thread
    pools observe values in completion order.

    .. warning:: **Unbounded growth.** Memory is O(observations) by
       design, which is a leak for anything long-running: a server
       observing per-request latency here would grow without bound.
       Always-on paths (``repro.serve``) must use the bounded
       :class:`repro.obs.live.WindowReservoir` instead; this class is
       for *campaigns*, whose observation count is bounded by the
       measurement plan.
    """

    __slots__ = ("name", "_values", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._values: List[float] = []
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._values.append(float(value))

    def add_values(self, values: Sequence[float]) -> None:
        """Fold observations shipped from another registry."""
        with self._lock:
            self._values.extend(float(v) for v in values)

    @property
    def count(self) -> int:
        with self._lock:
            return len(self._values)

    def values(self) -> List[float]:
        with self._lock:
            return list(self._values)

    def values_since(self, mark: int) -> List[float]:
        """Observations recorded after ``mark`` (a prior :attr:`count`)."""
        with self._lock:
            return list(self._values[mark:])

    def summary(self) -> Dict:
        with self._lock:
            values = list(self._values)
        if not values:
            return {"count": 0}
        ordered = sorted(values)
        return {
            "count": len(ordered),
            "sum": sum(ordered),
            "min": ordered[0],
            "max": ordered[-1],
            "mean": sum(ordered) / len(ordered),
            "p50": percentile(ordered, 50),
            "p90": percentile(ordered, 90),
            "p99": percentile(ordered, 99),
        }


@dataclass
class PhaseRecord:
    """One completed campaign phase: wall time plus counter deltas."""

    name: str
    wall_seconds: float
    counter_deltas: Dict[str, int] = field(default_factory=dict)


class MetricsRegistry:
    """Get-or-create registry of counters, timers, histograms, and
    phase records."""

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._timers: Dict[str, Timer] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._phases: List[PhaseRecord] = []
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        with self._lock:
            if name not in self._counters:
                self._counters[name] = Counter(name)
            return self._counters[name]

    def timer(self, name: str) -> Timer:
        with self._lock:
            if name not in self._timers:
                self._timers[name] = Timer(name)
            return self._timers[name]

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            if name not in self._histograms:
                self._histograms[name] = Histogram(name)
            return self._histograms[name]

    @property
    def phases(self) -> List[PhaseRecord]:
        return list(self._phases)

    def _counter_values(self) -> Dict[str, int]:
        with self._lock:
            return {name: c.value for name, c in self._counters.items()}

    @contextmanager
    def phase(self, name: str):
        """Record one campaign phase: its wall time and how much each
        counter advanced while it ran.  Phases may repeat (each entry
        appends a fresh record) and may nest."""
        before = self._counter_values()
        start = time.perf_counter()
        try:
            yield self
        finally:
            wall = time.perf_counter() - start
            after = self._counter_values()
            deltas = {
                key: after[key] - before.get(key, 0)
                for key in after
                if after[key] - before.get(key, 0)
            }
            with self._lock:
                self._phases.append(PhaseRecord(name, wall, deltas))

    def histogram_counts(self) -> Dict[str, int]:
        """Observation counts per histogram — the marks a worker takes
        before a task so it can ship only the new values after."""
        with self._lock:
            histograms = list(self._histograms.items())
        return {name: h.count for name, h in histograms}

    def histogram_values_since(self, marks: Dict[str, int]) -> Dict[str, List[float]]:
        """Raw observations recorded after ``marks``
        (a prior :meth:`histogram_counts`), dropping empty entries."""
        with self._lock:
            histograms = list(self._histograms.items())
        deltas = {
            name: h.values_since(marks.get(name, 0)) for name, h in histograms
        }
        return {name: values for name, values in deltas.items() if values}

    def merge_deltas(
        self,
        counters: Dict[str, int],
        timers: Dict[str, Dict],
        histograms: Optional[Dict[str, List[float]]] = None,
    ) -> None:
        """Fold another registry's movement into this one.

        Process-pool campaign workers record into their own registry;
        the executor ships each task's counter, timer, and histogram
        deltas back and merges them here, so ``--stats`` reads the same
        regardless of which pool (or none) ran the campaign.  Merging
        happens inside the surrounding :meth:`phase`, so phase counter
        deltas include worker activity too.
        """
        for name, delta in counters.items():
            if delta:
                self.counter(name).increment(delta)
        for name, t in timers.items():
            if t.get("count"):
                self.timer(name).add(t.get("total_seconds", 0.0), t["count"])
        for name, values in (histograms or {}).items():
            if values:
                self.histogram(name).add_values(values)

    # -- reporting ----------------------------------------------------------

    def snapshot(self) -> Dict:
        """A plain-dict view of everything recorded so far."""
        with self._lock:
            timers = list(self._timers.items())
            histograms = list(self._histograms.items())
            phases = list(self._phases)
        return {
            "counters": self._counter_values(),
            "timers": {name: t.summary() for name, t in timers},
            "histograms": {
                name: h.summary() for name, h in histograms if h.count
            },
            "phases": [
                {
                    "name": p.name,
                    "wall_seconds": p.wall_seconds,
                    "counter_deltas": dict(p.counter_deltas),
                }
                for p in phases
            ],
        }
