"""Campaign-level settings: one dataclass instead of scattered kwargs.

Historically every noise knob (session churn, RTT drift, delay jitter)
was a separate constructor argument on both :class:`AnyOpt` and
:class:`~repro.measurement.orchestrator.Orchestrator`, which made the
signatures grow with every model refinement.  They now live in a single
immutable :class:`CampaignSettings` value, alongside the runtime knobs
(parallelism, convergence cache).  The old kwargs are still accepted —
they emit a :class:`DeprecationWarning` and are folded into a settings
value — so existing callers keep working for one deprecation cycle.
"""

import dataclasses
import warnings
from dataclasses import dataclass
from typing import Optional

from repro.util.errors import ConfigurationError

#: Names of the legacy constructor kwargs that map onto settings fields.
LEGACY_NOISE_KWARGS = (
    "session_churn_prob",
    "rtt_drift_sigma",
    "rtt_bias_sigma",
    "bgp_delay_jitter_ms",
)


@dataclass(frozen=True)
class CampaignSettings:
    """Everything that tunes how a measurement campaign runs.

    Attributes:
        session_churn_prob: per-experiment probability that an AS's
            interior-routing state changed since the topology was
            built (the measurement-to-deployment drift).
        rtt_drift_sigma: relative sigma of per-target path-RTT drift.
        rtt_bias_sigma: relative sigma of the per-experiment epoch bias.
        bgp_delay_jitter_ms: mean of the per-run exponential jitter on
            every link's control-plane delay.
        parallelism: default worker count for campaign execution; 1
            runs experiments serially.
        convergence_cache: reuse converged BGP state across identical
            deployments (bit-identical; see :mod:`repro.runtime.cache`).
        convergence_cache_size: LRU capacity of that cache.
    """

    session_churn_prob: float = 0.02
    rtt_drift_sigma: float = 0.04
    rtt_bias_sigma: float = 0.03
    bgp_delay_jitter_ms: float = 20.0
    parallelism: int = 1
    convergence_cache: bool = True
    convergence_cache_size: int = 256

    def __post_init__(self):
        if not 0.0 <= self.session_churn_prob <= 1.0:
            raise ConfigurationError("session_churn_prob must be in [0, 1]")
        if self.rtt_drift_sigma < 0 or self.rtt_bias_sigma < 0:
            raise ConfigurationError("RTT drift sigmas must be non-negative")
        if self.bgp_delay_jitter_ms < 0:
            raise ConfigurationError("bgp_delay_jitter_ms must be non-negative")
        if self.parallelism < 1:
            raise ConfigurationError("parallelism must be >= 1")
        if self.convergence_cache_size < 1:
            raise ConfigurationError("convergence_cache_size must be >= 1")

    @classmethod
    def noiseless(cls, **overrides) -> "CampaignSettings":
        """Settings with every stochastic drift model disabled.

        Deployments become exactly repeatable, which also makes the
        convergence cache hit on every redeployment of a configuration.
        """
        base = dict(
            session_churn_prob=0.0,
            rtt_drift_sigma=0.0,
            rtt_bias_sigma=0.0,
            bgp_delay_jitter_ms=0.0,
        )
        base.update(overrides)
        return cls(**base)

    def replace(self, **changes) -> "CampaignSettings":
        """A copy with the given fields changed (re-validated)."""
        return dataclasses.replace(self, **changes)


def resolve_settings(
    settings: Optional[CampaignSettings],
    caller: str,
    **legacy_kwargs,
) -> CampaignSettings:
    """Fold deprecated per-knob constructor kwargs into settings.

    ``legacy_kwargs`` holds the old constructor arguments with None
    meaning "not supplied".  Supplying any of them emits a
    :class:`DeprecationWarning`; combining them with an explicit
    ``settings`` value is an error because the precedence would be
    ambiguous.
    """
    supplied = {k: v for k, v in legacy_kwargs.items() if v is not None}
    if not supplied:
        return settings if settings is not None else CampaignSettings()
    if settings is not None:
        raise ConfigurationError(
            f"{caller}: pass either settings= or the legacy noise kwargs, not both"
        )
    warnings.warn(
        f"{caller}: the {sorted(supplied)} kwargs are deprecated; "
        "pass settings=CampaignSettings(...) instead",
        DeprecationWarning,
        stacklevel=3,
    )
    return CampaignSettings(**supplied)
