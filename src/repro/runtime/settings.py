"""Campaign-level settings: one dataclass instead of scattered kwargs.

Historically every noise knob (session churn, RTT drift, delay jitter)
was a separate constructor argument on both :class:`AnyOpt` and
:class:`~repro.measurement.orchestrator.Orchestrator`, which made the
signatures grow with every model refinement.  They now live in a single
immutable :class:`CampaignSettings` value, alongside the runtime knobs
(parallelism, convergence cache).  The old kwargs are still accepted —
they emit a :class:`DeprecationWarning` and are folded into a settings
value — so existing callers keep working for one deprecation cycle.
"""

import dataclasses
import warnings
from dataclasses import dataclass
from typing import Optional

from repro.util.errors import ConfigurationError

#: Names of the legacy constructor kwargs that map onto settings fields.
LEGACY_NOISE_KWARGS = (
    "session_churn_prob",
    "rtt_drift_sigma",
    "rtt_bias_sigma",
    "bgp_delay_jitter_ms",
)


@dataclass(frozen=True)
class CampaignSettings:
    """Everything that tunes how a measurement campaign runs.

    Attributes:
        session_churn_prob: per-experiment probability that an AS's
            interior-routing state changed since the topology was
            built (the measurement-to-deployment drift).
        rtt_drift_sigma: relative sigma of per-target path-RTT drift.
        rtt_bias_sigma: relative sigma of the per-experiment epoch bias.
        bgp_delay_jitter_ms: mean of the per-run exponential jitter on
            every link's control-plane delay.
        engine_mode: which convergence engine the orchestrator runs:
            ``"delta"`` (the default; touched-AS tracking with
            copy-on-restore between runs, plus stub aggregation when
            ``aggregate_stubs`` is set) or ``"full"`` (every AS gets a
            live speaker, the pre-delta fast path).  Both modes are
            bit-identical to the ``reuse_state=False`` reference;
            the mode only changes how fast a run converges.
        aggregate_stubs: collapse pure-stub ASes — every session with
            a provider, whatever the homing degree — into their
            providers' catchments before event-driven simulation and
            expand them back at state-read time (delta mode only).
            Sound because a pure stub has no customers to export
            provider-learned routes to, so removing it from the event
            heap perturbs nothing (see :mod:`repro.bgp.delta`).
        max_convergence_events: event budget per convergence run;
            exhaustion raises
            :class:`~repro.util.errors.ConvergenceBudgetError` with an
            event census.  ``None`` (the default) auto-scales the cap
            with topology size (never below the historical 2M floor).
        parallelism: default worker count for campaign execution; 1
            runs experiments serially.
        executor: which worker pool ``parallelism > 1`` selects:
            ``"thread"`` (the default; workers share the orchestrator)
            or ``"process"`` (workers are forked processes, each with
            its own orchestrator rebuilt from the campaign spec).
            Results are bit-identical either way — experiment ids, not
            workers, key every noise stream.
        process_chunk_size: how many experiment tasks the process
            executor ships to a worker per dispatch.  ``None`` (the
            default) auto-sizes chunks from the task count and pool
            width; explicit values trade scheduling granularity
            (smaller chunks balance better) against per-dispatch
            pickling and metrics-merge overhead (larger chunks
            amortize better).  Chunking never changes results — only
            how many main-process round trips a campaign costs.
        convergence_cache: reuse converged BGP state across identical
            deployments (bit-identical; see :mod:`repro.runtime.cache`).
        convergence_cache_size: LRU capacity of that cache.
        convergence_cache_path: directory for the persistent on-disk
            convergence store (see :mod:`repro.io.cachestore`); None
            keeps the cache purely in memory.  A shared directory is
            what lets process workers and repeated CLI invocations hit
            each other's converged states.
        fault_announcement_prob: per-attempt probability that a BGP
            announcement transiently fails (see
            :mod:`repro.runtime.faults`).
        fault_convergence_timeout_prob: per-attempt probability that an
            experiment's convergence window times out.
        fault_probe_blackout_prob: per-attempt probability that an
            experiment's measurement session loses every probe.
        fault_session_reset_prob: per-attempt probability that the
            orchestrator's testbed session resets mid-experiment.
        retry_max_attempts: attempts per experiment operation before a
            transient failure becomes a ``FailedExperiment`` (1
            disables retrying).
        retry_backoff_base_ms: virtual backoff before the first retry.
        retry_backoff_factor: multiplier per further retry.
        retry_backoff_max_ms: cap on a single virtual backoff interval.
    """

    session_churn_prob: float = 0.02
    rtt_drift_sigma: float = 0.04
    rtt_bias_sigma: float = 0.03
    bgp_delay_jitter_ms: float = 20.0
    engine_mode: str = "delta"
    aggregate_stubs: bool = True
    max_convergence_events: Optional[int] = None
    parallelism: int = 1
    executor: str = "thread"
    process_chunk_size: Optional[int] = None
    convergence_cache: bool = True
    convergence_cache_size: int = 256
    convergence_cache_path: Optional[str] = None
    fault_announcement_prob: float = 0.0
    fault_convergence_timeout_prob: float = 0.0
    fault_probe_blackout_prob: float = 0.0
    fault_session_reset_prob: float = 0.0
    retry_max_attempts: int = 3
    retry_backoff_base_ms: float = 1000.0
    retry_backoff_factor: float = 2.0
    retry_backoff_max_ms: float = 60_000.0

    def __post_init__(self):
        if not 0.0 <= self.session_churn_prob <= 1.0:
            raise ConfigurationError("session_churn_prob must be in [0, 1]")
        if self.rtt_drift_sigma < 0 or self.rtt_bias_sigma < 0:
            raise ConfigurationError("RTT drift sigmas must be non-negative")
        if self.bgp_delay_jitter_ms < 0:
            raise ConfigurationError("bgp_delay_jitter_ms must be non-negative")
        if self.engine_mode not in ("delta", "full"):
            raise ConfigurationError(
                f"engine_mode must be 'delta' or 'full', got {self.engine_mode!r}"
            )
        if self.max_convergence_events is not None and self.max_convergence_events < 1:
            raise ConfigurationError(
                "max_convergence_events must be >= 1 (or None for auto)"
            )
        if self.parallelism < 1:
            raise ConfigurationError("parallelism must be >= 1")
        if self.executor not in ("thread", "process"):
            raise ConfigurationError(
                f"executor must be 'thread' or 'process', got {self.executor!r}"
            )
        if self.process_chunk_size is not None and self.process_chunk_size < 1:
            raise ConfigurationError("process_chunk_size must be >= 1 (or None)")
        if self.convergence_cache_size < 1:
            raise ConfigurationError("convergence_cache_size must be >= 1")
        for knob in (
            "fault_announcement_prob",
            "fault_convergence_timeout_prob",
            "fault_probe_blackout_prob",
            "fault_session_reset_prob",
        ):
            if not 0.0 <= getattr(self, knob) <= 1.0:
                raise ConfigurationError(f"{knob} must be in [0, 1]")
        if self.retry_max_attempts < 1:
            raise ConfigurationError("retry_max_attempts must be >= 1")
        if self.retry_backoff_base_ms < 0 or self.retry_backoff_max_ms < 0:
            raise ConfigurationError("retry backoff intervals must be non-negative")
        if self.retry_backoff_factor < 1.0:
            raise ConfigurationError("retry_backoff_factor must be >= 1")

    @property
    def faults_enabled(self) -> bool:
        """True when any fault-injection knob is nonzero."""
        return (
            self.fault_announcement_prob > 0.0
            or self.fault_convergence_timeout_prob > 0.0
            or self.fault_probe_blackout_prob > 0.0
            or self.fault_session_reset_prob > 0.0
        )

    @classmethod
    def noiseless(cls, **overrides) -> "CampaignSettings":
        """Settings with every stochastic drift model disabled.

        Deployments become exactly repeatable, which also makes the
        convergence cache hit on every redeployment of a configuration.
        """
        base = dict(
            session_churn_prob=0.0,
            rtt_drift_sigma=0.0,
            rtt_bias_sigma=0.0,
            bgp_delay_jitter_ms=0.0,
        )
        base.update(overrides)
        return cls(**base)

    def replace(self, **changes) -> "CampaignSettings":
        """A copy with the given fields changed (re-validated)."""
        return dataclasses.replace(self, **changes)


def resolve_settings(
    settings: Optional[CampaignSettings],
    caller: str,
    stacklevel: int = 2,
    **legacy_kwargs,
) -> CampaignSettings:
    """Fold deprecated per-knob constructor kwargs into settings.

    ``legacy_kwargs`` holds the old constructor arguments with None
    meaning "not supplied".  Supplying any of them emits a
    :class:`DeprecationWarning`; combining them with an explicit
    ``settings`` value is an error because the precedence would be
    ambiguous.

    ``stacklevel`` positions the warning at the deprecated call site:
    the default 2 blames this function's caller; shims that sit one
    frame deeper (``AnyOpt.__init__`` / ``Orchestrator.__init__``)
    pass 3 so the warning points at *their* caller, not inside
    ``repro``.
    """
    supplied = {k: v for k, v in legacy_kwargs.items() if v is not None}
    if not supplied:
        return settings if settings is not None else CampaignSettings()
    if settings is not None:
        raise ConfigurationError(
            f"{caller}: pass either settings= or the legacy noise kwargs, not both"
        )
    warnings.warn(
        f"{caller}: the {sorted(supplied)} kwargs are deprecated; "
        "pass settings=CampaignSettings(...) instead",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
    return CampaignSettings(**supplied)
