"""Convergence cache: reuse converged BGP state across deployments.

Running a configuration to convergence is the dominant cost of every
campaign, and several workflows redeploy the *same* configuration —
``evaluate`` after ``optimize``, stability studies, Monte-Carlo
baselines.  The cache is keyed by every input that determines the
converged state (the injection tuple, the per-experiment IGP overlay,
the delay-jitter parameters, and any scheduled withdrawals), so a hit
is bit-identical to re-running the engine: substituting the cached
:class:`~repro.bgp.engine.ConvergedState` never changes any result.

Hits therefore occur exactly when the stochastic per-experiment inputs
coincide — always for noise-free settings
(:meth:`~repro.runtime.settings.CampaignSettings.noiseless`), never
when churn or jitter resample per experiment.  That is the sound
trade: the cache accelerates repeated deployments without silently
freezing the drift models.
"""

import threading
from collections import OrderedDict
from typing import Dict, Optional, Sequence, Tuple

from repro.runtime.metrics import MetricsRegistry
from repro.util.errors import ConfigurationError

#: Metrics counter names used by the cache.
HITS_COUNTER = "convergence_cache_hits"
MISSES_COUNTER = "convergence_cache_misses"
DISK_HITS_COUNTER = "convergence_cache_disk_hits"


class ConvergenceCache:
    """A bounded LRU cache of converged control-plane states.

    Thread-safe: pooled campaign executors look up and store entries
    from worker threads.  Two threads racing on the same key may both
    miss and both converge — the results are identical by construction,
    so the duplicate store is harmless.

    ``store`` optionally spills entries to a persistent
    :class:`~repro.io.cachestore.ConvergenceStore`: every stored state
    is also written to disk, and a memory miss consults the disk
    before reporting a miss.  Disk hits count as hits (plus their own
    counter) because the engine run they replace is skipped all the
    same — that is how repeated CLI invocations and process-pool
    workers reuse each other's convergence work.

    Delta-mode states hold a :class:`~repro.bgp.delta.LazyStates`
    mapping whose pickle reduces to a plain dict, so a spilled entry is
    mode-agnostic on disk; the store is nonetheless namespaced by
    engine mode (see :func:`~repro.io.cachestore.topology_fingerprint`)
    so modes never serve each other's entries.
    """

    def __init__(
        self,
        max_entries: int = 256,
        metrics: Optional[MetricsRegistry] = None,
        store=None,
    ):
        if max_entries < 1:
            raise ConfigurationError("convergence cache needs at least one entry")
        self.max_entries = max_entries
        self.metrics = metrics
        self.disk_store = store
        self._entries: "OrderedDict[Tuple, object]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._lock = threading.Lock()

    # -- key construction ---------------------------------------------------

    @staticmethod
    def key_for(
        injections: Sequence,
        igp_overlay: Optional[Dict[Tuple[int, int], int]],
        delay_jitter_ms: float,
        delay_nonce: int,
        withdrawals: Sequence = (),
    ) -> Tuple:
        """The exact-input cache key for one engine run.

        The jitter nonce only participates when jitter is actually
        applied — with ``delay_jitter_ms == 0`` the nonce is never
        read, so runs differing only in nonce are identical.
        """
        overlay_key = (
            () if not igp_overlay else tuple(sorted(igp_overlay.items()))
        )
        jitter_key = (delay_jitter_ms, delay_nonce if delay_jitter_ms > 0.0 else 0)
        return (tuple(injections), overlay_key, jitter_key, tuple(withdrawals))

    # -- stats --------------------------------------------------------------

    @property
    def hits(self) -> int:
        return self._hits

    @property
    def misses(self) -> int:
        return self._misses

    def __len__(self) -> int:
        return len(self._entries)

    # -- operations ---------------------------------------------------------

    def lookup(self, key: Tuple):
        """The cached state for ``key``, or None (counts a hit/miss)."""
        with self._lock:
            state = self._entries.get(key)
            if state is not None:
                self._entries.move_to_end(key)
        from_disk = False
        if state is None and self.disk_store is not None:
            state = self.disk_store.load(key)
            if state is not None:
                from_disk = True
                self._insert(key, state)
        with self._lock:
            if state is not None:
                self._hits += 1
            else:
                self._misses += 1
        if self.metrics is not None:
            counter = HITS_COUNTER if state is not None else MISSES_COUNTER
            self.metrics.counter(counter).increment()
            if from_disk:
                self.metrics.counter(DISK_HITS_COUNTER).increment()
        return state

    def _insert(self, key: Tuple, state) -> None:
        with self._lock:
            self._entries[key] = state
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def store(self, key: Tuple, state) -> None:
        """Insert ``state``, evicting the least recently used entry;
        also spilled to the persistent store when one is attached."""
        self._insert(key, state)
        if self.disk_store is not None:
            self.disk_store.save(key, state)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
