"""Deterministic fault injection for measurement campaigns.

The paper's campaigns run for days on the real Internet (S4.5: ~10
days of singleton plus ~8 days of pairwise experiments at 2h spacing),
where probes are lost, orchestrator sessions reset, and announcements
fail.  This module injects those failure modes into the simulated
campaign so the runtime can be exercised — and tested — against them:

- *announcement failures*: the BGP injection never takes effect;
- *convergence timeouts*: the control plane does not settle within the
  per-experiment measurement window;
- *probe blackouts*: the measurement session loses every probe of an
  experiment;
- *session resets*: the orchestrator's session to the testbed drops.

Each fault is a probability knob on
:class:`~repro.runtime.settings.CampaignSettings` and raises a typed
:class:`~repro.util.errors.TransientError` subclass that
:func:`repro.runtime.retry.run_with_retry` knows to retry.

Determinism: every fault stream is keyed by ``(seed, fault,
experiment_id, attempt)`` — never by wall-clock or completion order —
so a pooled campaign injects bit-identical faults to a serial one, and
a retry (next ``attempt`` nonce) re-derives fresh fault noise instead
of deterministically re-failing.

The serving layer has its own hostile-network failure modes —
slow-loris reads, torn request bodies, clients that stop reading their
responses, corrupt snapshot publishes — modelled by
:class:`ServeFaultInjector` with the same seed-keyed determinism
(``(seed, "serve-fault", scope, index)``), consumed by the
``anyopt chaos`` harness (:mod:`repro.serve.chaos`).
"""

from typing import Optional, Sequence, Tuple

from repro.obs.log import get_logger
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.settings import CampaignSettings
from repro.util.errors import TransientError
from repro.util.rng import derive_rng

logger = get_logger("faults")


class AnnouncementFailureError(TransientError):
    """A BGP announcement was not accepted by the testbed."""

    fault_kind = "announcement"


class ConvergenceTimeoutError(TransientError):
    """The control plane failed to converge within the experiment window."""

    fault_kind = "convergence-timeout"


class ProbeBlackoutError(TransientError):
    """Every probe of a measurement session was lost."""

    fault_kind = "probe-blackout"


class SessionResetError(TransientError):
    """The orchestrator's session to the testbed dropped."""

    fault_kind = "session-reset"


#: Fault kind -> (settings field, raised error class).
FAULT_KINDS = {
    "announcement": ("fault_announcement_prob", AnnouncementFailureError),
    "convergence-timeout": ("fault_convergence_timeout_prob", ConvergenceTimeoutError),
    "probe-blackout": ("fault_probe_blackout_prob", ProbeBlackoutError),
    "session-reset": ("fault_session_reset_prob", SessionResetError),
}

#: Metrics counter incremented for every injected fault (plus a
#: per-kind ``fault_<kind>`` counter).
FAULTS_COUNTER = "faults_injected"


class FaultInjector:
    """Injects seeded transient faults into campaign operations.

    With every fault probability at its 0.0 default the injector is
    inert: :meth:`raise_if` returns immediately and no RNG stream is
    consumed, so fault-free campaigns stay bit-identical to builds
    that predate fault injection.
    """

    def __init__(
        self,
        seed,
        settings: CampaignSettings,
        metrics: Optional[MetricsRegistry] = None,
        tracer=None,
    ):
        self.seed = seed
        self.metrics = metrics
        self.tracer = tracer
        self._probs = {
            kind: getattr(settings, field) for kind, (field, _) in FAULT_KINDS.items()
        }

    @property
    def any_enabled(self) -> bool:
        return any(p > 0.0 for p in self._probs.values())

    def enabled(self, fault: str) -> bool:
        return self._probs[fault] > 0.0

    def raise_if(self, fault: str, experiment_id: int, attempt: int) -> None:
        """Raise the fault's typed error iff its seeded stream fires.

        ``attempt`` is the retry nonce: attempt 0 is the first try, and
        each retry re-derives the stream so transient faults clear with
        the probability the knob describes.
        """
        prob = self._probs[fault]
        if prob <= 0.0:
            return
        rng = derive_rng(self.seed, "fault", fault, experiment_id, attempt)
        if rng.random() >= prob:
            return
        if self.metrics is not None:
            self.metrics.counter(FAULTS_COUNTER).increment()
            self.metrics.counter(f"fault_{fault}").increment()
        if self.tracer is not None:
            self.tracer.add_event(
                "fault", fault=fault, experiment_id=experiment_id, attempt=attempt
            )
        logger.info(
            "fault injected",
            extra={"fields": {
                "fault": fault,
                "experiment_id": experiment_id,
                "attempt": attempt,
            }},
        )
        error_cls = FAULT_KINDS[fault][1]
        raise error_cls(
            f"injected {fault} fault (experiment {experiment_id}, "
            f"attempt {attempt})"
        )


#: Serve-path fault kinds the chaos harness can inject.  The first
#: three are hostile-client behaviours applied to individual requests;
#: ``corrupt-snapshot`` is a publisher-side fault applied to snapshot
#: publish events.
SERVE_FAULT_KINDS = ("slow-read", "torn-body", "stalled-write", "corrupt-snapshot")

#: The subset of SERVE_FAULT_KINDS that applies to requests.
SERVE_REQUEST_FAULTS = tuple(k for k in SERVE_FAULT_KINDS if k != "corrupt-snapshot")


class ServeFaultInjector:
    """Plans seeded serve-path faults for the chaos harness.

    Unlike :class:`FaultInjector` (which *raises* into campaign code),
    this one only *decides*: the harness asks which fault, if any, to
    apply to request ``index`` or publish ``index``, then acts the
    hostile client or corrupt publisher itself.  Decisions are keyed
    by ``(seed, "serve-fault", scope, index)`` — independent of
    timing, concurrency, and completion order — so a chaos run is
    reproducible from its seed alone.
    """

    def __init__(
        self,
        seed,
        request_fault_prob: float = 0.25,
        publish_corrupt_prob: float = 0.5,
        kinds: Sequence[str] = SERVE_REQUEST_FAULTS,
    ):
        if not 0.0 <= request_fault_prob <= 1.0:
            raise ValueError(
                f"request_fault_prob must be in [0, 1], got {request_fault_prob}"
            )
        if not 0.0 <= publish_corrupt_prob <= 1.0:
            raise ValueError(
                f"publish_corrupt_prob must be in [0, 1], got {publish_corrupt_prob}"
            )
        unknown = set(kinds) - set(SERVE_REQUEST_FAULTS)
        if unknown:
            raise ValueError(
                f"unknown serve fault kinds {sorted(unknown)}; "
                f"choose from {SERVE_REQUEST_FAULTS}"
            )
        self.seed = seed
        self.request_fault_prob = request_fault_prob
        self.publish_corrupt_prob = publish_corrupt_prob
        self.kinds = tuple(kinds)

    def request_fault(self, index: int) -> Optional[str]:
        """Which hostile-client fault (if any) request ``index`` gets."""
        if not self.kinds or self.request_fault_prob <= 0.0:
            return None
        rng = derive_rng(self.seed, "serve-fault", "request", index)
        if rng.random() >= self.request_fault_prob:
            return None
        return self.kinds[rng.randrange(len(self.kinds))]

    def publish_corrupt(self, index: int) -> bool:
        """Whether publish event ``index`` ships corrupt bytes."""
        if self.publish_corrupt_prob <= 0.0:
            return False
        rng = derive_rng(self.seed, "serve-fault", "publish", index)
        return rng.random() < self.publish_corrupt_prob

    def jitter(self, scope: str, index: int, lo: float, hi: float) -> float:
        """A seeded delay in ``[lo, hi]`` for pacing fault behaviour
        (e.g. how slowly a slow-loris trickles)."""
        rng = derive_rng(self.seed, "serve-fault", scope, index)
        return lo + (hi - lo) * rng.random()

    def plan(self, requests: int, publishes: int) -> Tuple[dict, dict]:
        """The full decision tables for a run — what the chaos report
        records so a failure is diagnosable from the artifact."""
        request_plan = {i: self.request_fault(i) for i in range(requests)}
        publish_plan = {i: self.publish_corrupt(i) for i in range(publishes)}
        return request_plan, publish_plan
