"""Deterministic fault injection for measurement campaigns.

The paper's campaigns run for days on the real Internet (S4.5: ~10
days of singleton plus ~8 days of pairwise experiments at 2h spacing),
where probes are lost, orchestrator sessions reset, and announcements
fail.  This module injects those failure modes into the simulated
campaign so the runtime can be exercised — and tested — against them:

- *announcement failures*: the BGP injection never takes effect;
- *convergence timeouts*: the control plane does not settle within the
  per-experiment measurement window;
- *probe blackouts*: the measurement session loses every probe of an
  experiment;
- *session resets*: the orchestrator's session to the testbed drops.

Each fault is a probability knob on
:class:`~repro.runtime.settings.CampaignSettings` and raises a typed
:class:`~repro.util.errors.TransientError` subclass that
:func:`repro.runtime.retry.run_with_retry` knows to retry.

Determinism: every fault stream is keyed by ``(seed, fault,
experiment_id, attempt)`` — never by wall-clock or completion order —
so a pooled campaign injects bit-identical faults to a serial one, and
a retry (next ``attempt`` nonce) re-derives fresh fault noise instead
of deterministically re-failing.
"""

from typing import Optional

from repro.obs.log import get_logger
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.settings import CampaignSettings
from repro.util.errors import TransientError
from repro.util.rng import derive_rng

logger = get_logger("faults")


class AnnouncementFailureError(TransientError):
    """A BGP announcement was not accepted by the testbed."""

    fault_kind = "announcement"


class ConvergenceTimeoutError(TransientError):
    """The control plane failed to converge within the experiment window."""

    fault_kind = "convergence-timeout"


class ProbeBlackoutError(TransientError):
    """Every probe of a measurement session was lost."""

    fault_kind = "probe-blackout"


class SessionResetError(TransientError):
    """The orchestrator's session to the testbed dropped."""

    fault_kind = "session-reset"


#: Fault kind -> (settings field, raised error class).
FAULT_KINDS = {
    "announcement": ("fault_announcement_prob", AnnouncementFailureError),
    "convergence-timeout": ("fault_convergence_timeout_prob", ConvergenceTimeoutError),
    "probe-blackout": ("fault_probe_blackout_prob", ProbeBlackoutError),
    "session-reset": ("fault_session_reset_prob", SessionResetError),
}

#: Metrics counter incremented for every injected fault (plus a
#: per-kind ``fault_<kind>`` counter).
FAULTS_COUNTER = "faults_injected"


class FaultInjector:
    """Injects seeded transient faults into campaign operations.

    With every fault probability at its 0.0 default the injector is
    inert: :meth:`raise_if` returns immediately and no RNG stream is
    consumed, so fault-free campaigns stay bit-identical to builds
    that predate fault injection.
    """

    def __init__(
        self,
        seed,
        settings: CampaignSettings,
        metrics: Optional[MetricsRegistry] = None,
        tracer=None,
    ):
        self.seed = seed
        self.metrics = metrics
        self.tracer = tracer
        self._probs = {
            kind: getattr(settings, field) for kind, (field, _) in FAULT_KINDS.items()
        }

    @property
    def any_enabled(self) -> bool:
        return any(p > 0.0 for p in self._probs.values())

    def enabled(self, fault: str) -> bool:
        return self._probs[fault] > 0.0

    def raise_if(self, fault: str, experiment_id: int, attempt: int) -> None:
        """Raise the fault's typed error iff its seeded stream fires.

        ``attempt`` is the retry nonce: attempt 0 is the first try, and
        each retry re-derives the stream so transient faults clear with
        the probability the knob describes.
        """
        prob = self._probs[fault]
        if prob <= 0.0:
            return
        rng = derive_rng(self.seed, "fault", fault, experiment_id, attempt)
        if rng.random() >= prob:
            return
        if self.metrics is not None:
            self.metrics.counter(FAULTS_COUNTER).increment()
            self.metrics.counter(f"fault_{fault}").increment()
        if self.tracer is not None:
            self.tracer.add_event(
                "fault", fault=fault, experiment_id=experiment_id, attempt=attempt
            )
        logger.info(
            "fault injected",
            extra={"fields": {
                "fault": fault,
                "experiment_id": experiment_id,
                "attempt": attempt,
            }},
        )
        error_cls = FAULT_KINDS[fault][1]
        raise error_cls(
            f"injected {fault} fault (experiment {experiment_id}, "
            f"attempt {attempt})"
        )
