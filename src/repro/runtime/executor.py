"""Campaign executors: run independent BGP experiments concurrently.

The experiment drivers express a campaign as an ordered list of
:class:`~repro.core.experiments.ExperimentTask` descriptors whose
experiment ids were *reserved up front* in serial order (see
:meth:`~repro.measurement.orchestrator.Orchestrator.reserve_experiment_ids`).
Because every seeded noise stream is keyed by experiment id — not by
wall-clock order or by worker identity — every executor produces
bit-identical results to the serial path: only the wall-clock
interleaving changes.

Three executors implement that contract:

- :class:`SerialExecutor` — the reference path, one experiment at a
  time in the calling thread.
- :class:`PooledExecutor` — a thread pool sharing the campaign's
  orchestrator; the default for ``parallelism > 1``.  Real measurement
  campaigns are dominated by waiting (BGP convergence holds, probe
  round trips), which threads overlap well.
- :class:`ProcessExecutor` — a pool of forked worker processes, each
  owning an orchestrator rebuilt from the campaign's picklable spec
  (testbed, targets, seed, settings).  This sidesteps the GIL for
  CPU-bound convergence work; each worker's counter, timer, histogram,
  and trace-span movement is shipped back per task and merged into the
  main registry and tracer, so ``--stats`` and ``--trace`` read the
  same either way.  Worker-local convergence
  caches warm independently (share them across processes with
  ``convergence_cache_path``).
"""

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from functools import partial
from multiprocessing import get_context
from threading import Lock
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from repro.util.errors import ConfigurationError

T = TypeVar("T")

#: Signature of the optional progress callback: ``progress(done, total)``.
ProgressFn = Callable[[int, int], None]


class CampaignExecutor:
    """Base executor: runs tasks serially, in order."""

    #: Number of concurrent workers (1 for the serial path).
    max_workers: int = 1

    def run(
        self,
        tasks: Sequence[Callable[[], T]],
        progress: Optional[ProgressFn] = None,
    ) -> List[T]:
        """Run every task and return their results in task order."""
        results: List[T] = []
        total = len(tasks)
        for done, task in enumerate(tasks, start=1):
            results.append(task())
            if progress is not None:
                progress(done, total)
        return results

    def run_experiments(
        self,
        orchestrator,
        tasks: Sequence,
        progress: Optional[ProgressFn] = None,
    ) -> List:
        """Execute :class:`~repro.core.experiments.ExperimentTask`
        descriptors against ``orchestrator``; results keep task order.

        The in-process executors bind each descriptor to the campaign's
        own orchestrator; :class:`ProcessExecutor` overrides this to
        ship the descriptors to its workers instead.
        """
        # Imported lazily: repro.core imports this module, so a
        # module-level import would be a cycle.
        from repro.core.experiments import execute_experiment_task

        return self.run(
            [partial(execute_experiment_task, orchestrator, task) for task in tasks],
            progress=progress,
        )

    def close(self) -> None:
        """Release pooled resources (a no-op for in-process executors).

        Safe to call repeatedly; campaign drivers call it when the
        campaign ends."""


class SerialExecutor(CampaignExecutor):
    """The serial reference path: one experiment at a time."""


class PooledExecutor(CampaignExecutor):
    """Runs tasks on a thread pool; results keep task order.

    ``progress`` is invoked from worker threads as tasks complete (in
    completion order, which may differ from task order).
    """

    def __init__(self, max_workers: int):
        if max_workers < 1:
            raise ConfigurationError("executor needs at least one worker")
        self.max_workers = max_workers

    def run(
        self,
        tasks: Sequence[Callable[[], T]],
        progress: Optional[ProgressFn] = None,
    ) -> List[T]:
        if not tasks:
            return []
        total = len(tasks)
        done = 0
        done_lock = Lock()

        def tracked(task: Callable[[], T]) -> T:
            nonlocal done
            result = task()
            if progress is not None:
                with done_lock:
                    done += 1
                    current = done
                progress(current, total)
            return result

        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            futures = [pool.submit(tracked, task) for task in tasks]
            return [f.result() for f in futures]


# -- process pool -----------------------------------------------------------


@dataclass(frozen=True)
class _WorkerSpec:
    """Everything a forked worker needs to rebuild the campaign's
    orchestrator.  All fields must be picklable (the AS graph drops
    its derived topology tables on pickling and workers rebuild them
    on first use)."""

    testbed: Any
    targets: Any
    seed: Any
    settings: Any


#: The per-worker-process orchestrator, built once by the pool
#: initializer and reused for every task the worker executes.
_WORKER_ORCHESTRATOR = None


def _init_worker(spec: _WorkerSpec) -> None:
    global _WORKER_ORCHESTRATOR
    from repro.measurement.orchestrator import Orchestrator

    _WORKER_ORCHESTRATOR = Orchestrator(
        spec.testbed, spec.targets, seed=spec.seed, settings=spec.settings
    )


def _snapshot_deltas(before: Dict, after: Dict) -> Tuple[Dict, Dict]:
    """Counter/timer movement between two metrics snapshots."""
    counters = {
        name: after["counters"][name] - before["counters"].get(name, 0)
        for name in after["counters"]
    }
    timers = {
        name: {
            "total_seconds": t["total_seconds"]
            - before["timers"].get(name, {}).get("total_seconds", 0.0),
            "count": t["count"] - before["timers"].get(name, {}).get("count", 0),
        }
        for name, t in after["timers"].items()
    }
    return counters, timers


def _run_worker_task(task):
    """Execute one descriptor in a worker process.

    Returns ``(result, counter_deltas, timer_deltas, histogram_deltas,
    span_records)``; the main process merges the deltas so campaign
    metrics and traces are complete even though each worker records
    into its own registry and tracer.
    """
    from repro.core.experiments import execute_experiment_task

    orchestrator = _WORKER_ORCHESTRATOR
    orchestrator.adopt_reserved_ids(task.experiment_ids)
    before = orchestrator.metrics.snapshot()
    histogram_marks = orchestrator.metrics.histogram_counts()
    span_mark = orchestrator.tracer.finished_count
    result = execute_experiment_task(orchestrator, task)
    counters, timers = _snapshot_deltas(before, orchestrator.metrics.snapshot())
    histograms = orchestrator.metrics.histogram_values_since(histogram_marks)
    spans = orchestrator.tracer.export_finished_since(span_mark)
    return result, counters, timers, histograms, spans


class ProcessExecutor(CampaignExecutor):
    """Runs experiment descriptors on a pool of forked processes.

    The pool is created lazily on the first :meth:`run_experiments`
    call (that is when the campaign spec is known) and persists across
    campaign phases; call :meth:`close` — campaign drivers do — to
    shut the workers down.

    Uses the ``fork`` start method where available so workers inherit
    the parent's imports cheaply; platforms without ``fork`` fall back
    to the default start method.
    """

    def __init__(self, max_workers: int):
        if max_workers < 1:
            raise ConfigurationError("executor needs at least one worker")
        self.max_workers = max_workers
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_owner = None

    def run(
        self,
        tasks: Sequence[Callable[[], T]],
        progress: Optional[ProgressFn] = None,
    ) -> List[T]:
        raise ConfigurationError(
            "the process executor runs ExperimentTask descriptors via "
            "run_experiments(); in-process callables cannot cross the "
            "process boundary"
        )

    def _pool_for(self, orchestrator) -> ProcessPoolExecutor:
        if self._pool is not None and self._pool_owner is orchestrator:
            return self._pool
        self.close()
        spec = _WorkerSpec(
            testbed=orchestrator.testbed,
            targets=orchestrator.targets,
            seed=orchestrator.seed,
            settings=orchestrator.settings,
        )
        try:
            mp_context = get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            mp_context = get_context()
        self._pool = ProcessPoolExecutor(
            max_workers=self.max_workers,
            mp_context=mp_context,
            initializer=_init_worker,
            initargs=(spec,),
        )
        self._pool_owner = orchestrator
        return self._pool

    def run_experiments(
        self,
        orchestrator,
        tasks: Sequence,
        progress: Optional[ProgressFn] = None,
    ) -> List:
        if not tasks:
            return []
        pool = self._pool_for(orchestrator)
        futures = [pool.submit(_run_worker_task, task) for task in tasks]
        results: List = []
        total = len(tasks)
        for done, future in enumerate(futures, start=1):
            result, counters, timers, histograms, spans = future.result()
            orchestrator.metrics.merge_deltas(counters, timers, histograms)
            orchestrator.tracer.merge_spans(spans)
            results.append(result)
            if progress is not None:
                progress(done, total)
        return results

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
            self._pool_owner = None


def make_executor(
    parallelism: Optional[int], kind: str = "thread"
) -> CampaignExecutor:
    """The entry-point policy: ``None`` or ``1`` selects the serial
    path; anything larger a pool of that width — threads by default,
    forked processes for ``kind="process"``."""
    if kind not in ("thread", "process"):
        raise ConfigurationError(
            f"executor kind must be 'thread' or 'process', got {kind!r}"
        )
    if parallelism is not None and parallelism < 1:
        raise ConfigurationError("parallelism must be >= 1")
    if parallelism is None or parallelism == 1:
        return SerialExecutor()
    if kind == "process":
        return ProcessExecutor(parallelism)
    return PooledExecutor(parallelism)
