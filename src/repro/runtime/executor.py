"""Campaign executors: run independent BGP experiments concurrently.

The experiment drivers express a campaign as an ordered list of
zero-argument tasks whose experiment ids were *reserved up front* in
serial order (see
:meth:`~repro.measurement.orchestrator.Orchestrator.reserve_experiment_ids`).
Because every seeded noise stream is keyed by experiment id — not by
wall-clock order — the pooled executor produces bit-identical results
to the serial path: only the wall-clock interleaving changes.

Real measurement campaigns are dominated by waiting (BGP convergence
holds, probe round trips), which is why platforms like Tangled batch
and parallelize independent probes; the thread pool mirrors that
structure and keeps every task picklable-free and in-process.
"""

from concurrent.futures import ThreadPoolExecutor
from threading import Lock
from typing import Callable, List, Optional, Sequence, TypeVar

from repro.util.errors import ConfigurationError

T = TypeVar("T")

#: Signature of the optional progress callback: ``progress(done, total)``.
ProgressFn = Callable[[int, int], None]


class CampaignExecutor:
    """Base executor: runs tasks serially, in order."""

    #: Number of concurrent workers (1 for the serial path).
    max_workers: int = 1

    def run(
        self,
        tasks: Sequence[Callable[[], T]],
        progress: Optional[ProgressFn] = None,
    ) -> List[T]:
        """Run every task and return their results in task order."""
        results: List[T] = []
        total = len(tasks)
        for done, task in enumerate(tasks, start=1):
            results.append(task())
            if progress is not None:
                progress(done, total)
        return results


class SerialExecutor(CampaignExecutor):
    """The serial reference path: one experiment at a time."""


class PooledExecutor(CampaignExecutor):
    """Runs tasks on a thread pool; results keep task order.

    ``progress`` is invoked from worker threads as tasks complete (in
    completion order, which may differ from task order).
    """

    def __init__(self, max_workers: int):
        if max_workers < 1:
            raise ConfigurationError("executor needs at least one worker")
        self.max_workers = max_workers

    def run(
        self,
        tasks: Sequence[Callable[[], T]],
        progress: Optional[ProgressFn] = None,
    ) -> List[T]:
        if not tasks:
            return []
        total = len(tasks)
        done = 0
        done_lock = Lock()

        def tracked(task: Callable[[], T]) -> T:
            nonlocal done
            result = task()
            if progress is not None:
                with done_lock:
                    done += 1
                    current = done
                progress(current, total)
            return result

        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            futures = [pool.submit(tracked, task) for task in tasks]
            return [f.result() for f in futures]


def make_executor(parallelism: Optional[int]) -> CampaignExecutor:
    """The entry-point policy: ``None`` or ``1`` selects the serial
    path, anything larger a thread pool of that width."""
    if parallelism is None or parallelism == 1:
        return SerialExecutor()
    if parallelism < 1:
        raise ConfigurationError("parallelism must be >= 1")
    return PooledExecutor(parallelism)
