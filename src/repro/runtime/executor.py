"""Campaign executors: run independent BGP experiments concurrently.

The experiment drivers express a campaign as an ordered list of
:class:`~repro.core.experiments.ExperimentTask` descriptors whose
experiment ids were *reserved up front* in serial order (see
:meth:`~repro.measurement.orchestrator.Orchestrator.reserve_experiment_ids`).
Because every seeded noise stream is keyed by experiment id — not by
wall-clock order or by worker identity — every executor produces
bit-identical results to the serial path: only the wall-clock
interleaving changes.

Three executors implement that contract:

- :class:`SerialExecutor` — the reference path, one experiment at a
  time in the calling thread.
- :class:`PooledExecutor` — a thread pool sharing the campaign's
  orchestrator; the default for ``parallelism > 1``.  Real measurement
  campaigns are dominated by waiting (BGP convergence holds, probe
  round trips), which threads overlap well.
- :class:`ProcessExecutor` — a pool of forked worker processes, each
  owning an orchestrator rebuilt from the campaign's picklable spec
  (testbed, targets, seed, settings).  This sidesteps the GIL for
  CPU-bound convergence work.  Tasks are dispatched in *chunks*
  (auto-sized from the task count and pool width, or pinned via
  ``CampaignSettings.process_chunk_size`` / ``--chunk-size``): one
  worker round trip carries a whole chunk's descriptors out and a
  single merged counter/timer/histogram/span delta back, instead of
  one pickling round trip per experiment.  The pool itself is keyed on
  the campaign *spec*, not on orchestrator object identity, so the
  discover → audit → repair phases of one campaign reuse one warm
  pool of forked workers.  Worker-local convergence caches warm
  independently (share them across processes with
  ``convergence_cache_path``).
"""

from concurrent.futures import (
    CancelledError,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)
from dataclasses import dataclass
from functools import partial
from multiprocessing import get_context
from threading import Lock
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from repro.util.errors import ConfigurationError

T = TypeVar("T")

#: Signature of the optional progress callback: ``progress(done, total)``.
ProgressFn = Callable[[int, int], None]


class CampaignExecutor:
    """Base executor: runs tasks serially, in order."""

    #: Number of concurrent workers (1 for the serial path).
    max_workers: int = 1

    def run(
        self,
        tasks: Sequence[Callable[[], T]],
        progress: Optional[ProgressFn] = None,
    ) -> List[T]:
        """Run every task and return their results in task order."""
        results: List[T] = []
        total = len(tasks)
        for done, task in enumerate(tasks, start=1):
            results.append(task())
            if progress is not None:
                progress(done, total)
        return results

    def run_experiments(
        self,
        orchestrator,
        tasks: Sequence,
        progress: Optional[ProgressFn] = None,
    ) -> List:
        """Execute :class:`~repro.core.experiments.ExperimentTask`
        descriptors against ``orchestrator``; results keep task order.

        The in-process executors bind each descriptor to the campaign's
        own orchestrator; :class:`ProcessExecutor` overrides this to
        ship the descriptors to its workers instead.
        """
        # Imported lazily: repro.core imports this module, so a
        # module-level import would be a cycle.
        from repro.core.experiments import execute_experiment_task

        return self.run(
            [partial(execute_experiment_task, orchestrator, task) for task in tasks],
            progress=progress,
        )

    def close(self) -> None:
        """Release pooled resources (a no-op for in-process executors).

        Safe to call repeatedly; campaign drivers call it when the
        campaign ends."""


class SerialExecutor(CampaignExecutor):
    """The serial reference path: one experiment at a time."""


class PooledExecutor(CampaignExecutor):
    """Runs tasks on a thread pool; results keep task order.

    ``progress`` is invoked from worker threads as tasks complete (in
    completion order, which may differ from task order).
    """

    def __init__(self, max_workers: int):
        if max_workers < 1:
            raise ConfigurationError("executor needs at least one worker")
        self.max_workers = max_workers

    def run(
        self,
        tasks: Sequence[Callable[[], T]],
        progress: Optional[ProgressFn] = None,
    ) -> List[T]:
        if not tasks:
            return []
        total = len(tasks)
        done = 0
        done_lock = Lock()

        def tracked(task: Callable[[], T]) -> T:
            nonlocal done
            result = task()
            if progress is not None:
                with done_lock:
                    done += 1
                    current = done
                progress(current, total)
            return result

        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            futures = [pool.submit(tracked, task) for task in tasks]
            try:
                return [f.result() for f in futures]
            except BaseException:
                # Fail fast: cancel everything still queued so the
                # pool-exit join doesn't run the rest of the campaign
                # before the error surfaces.  Tasks already running
                # finish (threads cannot be interrupted) and the pool
                # joins only those.
                for f in futures:
                    f.cancel()
                raise


# -- process pool -----------------------------------------------------------


#: With no explicit chunk size, aim for this many chunks per worker:
#: enough slack that an unlucky worker stuck with the slowest chunk
#: doesn't serialize the tail of the campaign, while still amortizing
#: the per-dispatch pickling and metrics-merge round trip over several
#: experiments.
_CHUNKS_PER_WORKER = 4


def auto_chunk_size(task_count: int, max_workers: int) -> int:
    """The chunk size the process executor picks when none is pinned:
    ``ceil(tasks / (workers * _CHUNKS_PER_WORKER))``, floored at 1.

    Small dispatches degenerate to one task per chunk (identical to
    the historical per-experiment dispatch); large campaigns ship
    ``~4 * pool_width`` chunks regardless of experiment count."""
    if task_count <= 0:
        return 1
    return max(1, -(-task_count // (max_workers * _CHUNKS_PER_WORKER)))


@dataclass(frozen=True)
class _WorkerSpec:
    """Everything a forked worker needs to rebuild the campaign's
    orchestrator.  All fields must be picklable (the AS graph drops
    its derived topology tables on pickling and workers rebuild them
    on first use); under the preferred ``fork`` start method the spec
    is inherited through the forked memory image at pool creation —
    the shared topology crosses the process boundary exactly once per
    worker, never per task."""

    testbed: Any
    targets: Any
    seed: Any
    settings: Any


#: The per-worker-process orchestrator, built once by the pool
#: initializer and reused for every task the worker executes.
_WORKER_ORCHESTRATOR = None


def _init_worker(spec: _WorkerSpec) -> None:
    global _WORKER_ORCHESTRATOR
    from repro.measurement.orchestrator import Orchestrator

    _WORKER_ORCHESTRATOR = Orchestrator(
        spec.testbed, spec.targets, seed=spec.seed, settings=spec.settings
    )


def _snapshot_deltas(before: Dict, after: Dict) -> Tuple[Dict, Dict]:
    """Counter/timer movement between two metrics snapshots."""
    counters = {
        name: after["counters"][name] - before["counters"].get(name, 0)
        for name in after["counters"]
    }
    timers = {
        name: {
            "total_seconds": t["total_seconds"]
            - before["timers"].get(name, {}).get("total_seconds", 0.0),
            "count": t["count"] - before["timers"].get(name, {}).get("count", 0),
        }
        for name, t in after["timers"].items()
    }
    return counters, timers


def _run_worker_chunk(tasks):
    """Execute a chunk of descriptors in a worker process.

    Returns ``(results, counter_deltas, timer_deltas, histogram_deltas,
    span_records)`` — the whole chunk's results in task order plus
    *one* metrics/span delta covering all of them, so the main process
    pays a single merge per chunk instead of one per experiment.
    """
    from repro.core.experiments import execute_experiment_task

    orchestrator = _WORKER_ORCHESTRATOR
    for task in tasks:
        orchestrator.adopt_reserved_ids(task.experiment_ids)
    before = orchestrator.metrics.snapshot()
    histogram_marks = orchestrator.metrics.histogram_counts()
    span_mark = orchestrator.tracer.finished_count
    results = [execute_experiment_task(orchestrator, task) for task in tasks]
    counters, timers = _snapshot_deltas(before, orchestrator.metrics.snapshot())
    histograms = orchestrator.metrics.histogram_values_since(histogram_marks)
    spans = orchestrator.tracer.export_finished_since(span_mark)
    return results, counters, timers, histograms, spans


class ProcessExecutor(CampaignExecutor):
    """Runs experiment descriptors on a pool of forked processes.

    The pool is created lazily on the first :meth:`run_experiments`
    call (that is when the campaign spec is known) and is keyed on the
    campaign *spec* — same testbed and target-set objects, equal seed
    and settings — rather than on the orchestrator's object identity.
    Campaign phases that rebuild their orchestrator from the same spec
    (the repair loop does, once per round) therefore reuse the warm
    pool instead of silently re-forking.  A re-fork happens only for a
    genuinely different spec (e.g. a repair round with an escalated
    retry budget, which workers must honor) or when a batch's
    experiment ids regress below ids already dispatched — one
    campaign's ids only grow across dispatches, so a regression means
    a *new* campaign restarted its id space and the stale workers'
    id-reuse guard must not see it.  Call :meth:`close` — or
    ``AnyOpt.close()`` — to shut the workers down when the campaign
    ends.

    ``chunk_size`` pins how many descriptors each worker dispatch
    carries; ``None`` auto-sizes via :func:`auto_chunk_size`.  Results
    are returned in task order regardless of chunking; ``progress``
    fires in completion order as chunks finish (the same contract as
    :class:`PooledExecutor`), so one slow head-of-line chunk never
    freezes the progress display.

    Uses the ``fork`` start method where available so workers inherit
    the parent's imports (and the campaign spec) cheaply; platforms
    without ``fork`` fall back to the default start method.
    """

    def __init__(self, max_workers: int, chunk_size: Optional[int] = None):
        if max_workers < 1:
            raise ConfigurationError("executor needs at least one worker")
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError("chunk size must be >= 1 (or None for auto)")
        self.max_workers = max_workers
        self.chunk_size = chunk_size
        self._pool: Optional[ProcessPoolExecutor] = None
        #: The (testbed, targets, seed, settings) the live pool's
        #: workers were forked with.
        self._pool_spec: Optional[Tuple[Any, Any, Any, Any]] = None
        #: Highest experiment id ever dispatched to the live pool.
        #: Within one campaign ids only grow across dispatches (they
        #: are reserved serially); an incoming batch whose ids regress
        #: below this mark is a *new* campaign that restarted its id
        #: space, and its ids would trip the workers' reuse guard — so
        #: it gets a fresh fork instead.
        self._pool_max_id = 0

    def run(
        self,
        tasks: Sequence[Callable[[], T]],
        progress: Optional[ProgressFn] = None,
    ) -> List[T]:
        raise ConfigurationError(
            "the process executor runs ExperimentTask descriptors via "
            "run_experiments(); in-process callables cannot cross the "
            "process boundary"
        )

    def _spec_matches(self, orchestrator) -> bool:
        if self._pool_spec is None:
            return False
        testbed, targets, seed, settings = self._pool_spec
        return (
            testbed is orchestrator.testbed
            and targets is orchestrator.targets
            and seed == orchestrator.seed
            and settings == orchestrator.settings
        )

    def _pool_for(self, orchestrator, min_batch_id: int) -> ProcessPoolExecutor:
        if (
            self._pool is not None
            and self._spec_matches(orchestrator)
            and min_batch_id > self._pool_max_id
        ):
            return self._pool
        self.close()
        spec = _WorkerSpec(
            testbed=orchestrator.testbed,
            targets=orchestrator.targets,
            seed=orchestrator.seed,
            settings=orchestrator.settings,
        )
        try:
            mp_context = get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            mp_context = get_context()
        self._pool = ProcessPoolExecutor(
            max_workers=self.max_workers,
            mp_context=mp_context,
            initializer=_init_worker,
            initargs=(spec,),
        )
        self._pool_spec = (
            orchestrator.testbed,
            orchestrator.targets,
            orchestrator.seed,
            orchestrator.settings,
        )
        return self._pool

    def run_experiments(
        self,
        orchestrator,
        tasks: Sequence,
        progress: Optional[ProgressFn] = None,
    ) -> List:
        if not tasks:
            return []
        batch_ids = [i for task in tasks for i in task.experiment_ids]
        pool = self._pool_for(orchestrator, min(batch_ids, default=1))
        self._pool_max_id = max(self._pool_max_id, max(batch_ids, default=0))
        size = (
            self.chunk_size
            if self.chunk_size is not None
            else auto_chunk_size(len(tasks), self.max_workers)
        )
        chunks = [list(tasks[i : i + size]) for i in range(0, len(tasks), size)]
        chunk_index = {
            pool.submit(_run_worker_chunk, chunk): idx
            for idx, chunk in enumerate(chunks)
        }
        slots: List[Optional[List]] = [None] * len(chunks)
        total = len(tasks)
        done = 0
        first_error: Optional[BaseException] = None
        for future in as_completed(chunk_index):
            try:
                results, counters, timers, histograms, spans = future.result()
            except CancelledError:
                continue
            except BaseException as exc:
                # First failure wins; cancel everything still queued,
                # but keep draining so chunks that already finished
                # (or were mid-flight) still merge their metrics and
                # spans before the error surfaces.
                if first_error is None:
                    first_error = exc
                    for pending in chunk_index:
                        pending.cancel()
                continue
            orchestrator.metrics.merge_deltas(counters, timers, histograms)
            orchestrator.tracer.merge_spans(spans)
            slots[chunk_index[future]] = results
            done += len(results)
            if progress is not None and first_error is None:
                progress(done, total)
        if first_error is not None:
            raise first_error
        return [result for chunk_results in slots for result in chunk_results]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
            self._pool_spec = None
            self._pool_max_id = 0


def make_executor(
    parallelism: Optional[int],
    kind: str = "thread",
    chunk_size: Optional[int] = None,
) -> CampaignExecutor:
    """The entry-point policy: ``None`` or ``1`` selects the serial
    path; anything larger a pool of that width — threads by default,
    forked processes for ``kind="process"``.  ``chunk_size`` pins the
    process executor's dispatch chunking (ignored for the other
    kinds); ``None`` auto-sizes per dispatch."""
    if kind not in ("thread", "process"):
        raise ConfigurationError(
            f"executor kind must be 'thread' or 'process', got {kind!r}"
        )
    if parallelism is not None and parallelism < 1:
        raise ConfigurationError("parallelism must be >= 1")
    if parallelism is None or parallelism == 1:
        return SerialExecutor()
    if kind == "process":
        return ProcessExecutor(parallelism, chunk_size=chunk_size)
    return PooledExecutor(parallelism)
