"""Campaign runtime: parallel execution, convergence caching, metrics.

The AnyOpt pipeline is dominated by independent BGP experiments —
singletons, ordered pairwise pairs, one-pass peer trials — that a
serial loop turns into the campaign's wall-clock floor.  This package
supplies the runtime machinery the drivers in :mod:`repro.core` and
:mod:`repro.measurement` thread through their call chains:

- :mod:`repro.runtime.executor` — serial, thread-pooled, and
  process-pooled campaign executors; experiment ids are reserved up
  front so pooled runs are bit-identical to serial ones.  The process
  executor dispatches *chunks* of tasks to a warm pool of forked
  workers keyed on the campaign spec (one metrics/span merge per
  chunk, one pool across campaign phases);
- :mod:`repro.runtime.cache` — an exact-input LRU cache of converged
  BGP states, so redeployments of the same configuration skip
  re-propagation;
- :mod:`repro.runtime.metrics` — counters, timers, histograms with
  percentile summaries, and per-phase campaign summaries (surfaced via
  ``AnyOpt.metrics``, the CLI's ``--stats`` / ``--metrics-out`` flags,
  and ``repro.report.render_metrics``);
- :mod:`repro.runtime.settings` — :class:`CampaignSettings`, the
  single home of every campaign knob, with deprecation shims for the
  old per-knob constructor arguments;
- :mod:`repro.runtime.faults` — deterministic, seed-keyed fault
  injection (announcement failures, convergence timeouts, probe
  blackouts, session resets);
- :mod:`repro.runtime.retry` — :class:`RetryPolicy` with virtual-time
  exponential backoff, and the :class:`FailedExperiment` degradation
  record.
"""

from repro.runtime.cache import ConvergenceCache
from repro.runtime.executor import (
    CampaignExecutor,
    PooledExecutor,
    ProcessExecutor,
    SerialExecutor,
    auto_chunk_size,
    make_executor,
)
from repro.runtime.faults import (
    AnnouncementFailureError,
    ConvergenceTimeoutError,
    FaultInjector,
    ProbeBlackoutError,
    SessionResetError,
)
from repro.runtime.metrics import Counter, Histogram, MetricsRegistry, PhaseRecord, Timer
from repro.runtime.retry import (
    FailedExperiment,
    RetryPolicy,
    run_with_retry,
)
from repro.runtime.settings import CampaignSettings, resolve_settings

__all__ = [
    "AnnouncementFailureError",
    "CampaignExecutor",
    "CampaignSettings",
    "ConvergenceCache",
    "ConvergenceTimeoutError",
    "Counter",
    "FailedExperiment",
    "FaultInjector",
    "Histogram",
    "MetricsRegistry",
    "PhaseRecord",
    "PooledExecutor",
    "ProbeBlackoutError",
    "ProcessExecutor",
    "RetryPolicy",
    "SerialExecutor",
    "SessionResetError",
    "Timer",
    "auto_chunk_size",
    "make_executor",
    "resolve_settings",
    "run_with_retry",
]
