"""Retry with exponential backoff, and the typed failure record.

Real campaign runners (Verfploeter/Tangled-style platforms) do not
abort a multi-day campaign on one lost announcement: they retry the
experiment a bounded number of times, backing off between attempts,
and record what could not be completed.  This module supplies that
policy for the simulated campaign:

- :class:`RetryPolicy` — max attempts plus exponential backoff
  computed in *virtual* time (the simulator never sleeps; backoff is
  accounted into the ``retry_backoff_virtual_ms`` metrics counter);
- :func:`run_with_retry` — runs an attempt function, retrying on
  :class:`~repro.util.errors.TransientError` with a fresh attempt
  nonce each time (so seeded fault/noise streams re-derive), and
  raising :class:`~repro.util.errors.RetriesExhaustedError` when the
  budget runs out;
- :class:`FailedExperiment` — the typed record a campaign driver
  stores when an experiment exhausts its retries, so the campaign can
  complete with a degradation report instead of dying.
"""

from dataclasses import dataclass
from typing import Callable, Optional, Tuple, TypeVar

from repro.obs.log import get_logger
from repro.runtime.metrics import MetricsRegistry
from repro.util.errors import RetriesExhaustedError, TransientError

T = TypeVar("T")

logger = get_logger("retry")

#: Metrics counter names used by the retry layer.
RETRIES_COUNTER = "retries"
BACKOFF_COUNTER = "retry_backoff_virtual_ms"


@dataclass(frozen=True)
class RetryPolicy:
    """How often and how patiently transient failures are retried.

    Attributes:
        max_attempts: total tries per operation (1 disables retrying).
        backoff_base_ms: virtual backoff before the first retry.
        backoff_factor: multiplier applied per further retry.
        backoff_max_ms: cap on a single backoff interval.
    """

    max_attempts: int = 3
    backoff_base_ms: float = 1000.0
    backoff_factor: float = 2.0
    backoff_max_ms: float = 60_000.0

    @classmethod
    def from_settings(cls, settings) -> "RetryPolicy":
        """The policy described by a
        :class:`~repro.runtime.settings.CampaignSettings` value."""
        return cls(
            max_attempts=settings.retry_max_attempts,
            backoff_base_ms=settings.retry_backoff_base_ms,
            backoff_factor=settings.retry_backoff_factor,
            backoff_max_ms=settings.retry_backoff_max_ms,
        )

    def backoff_ms(self, attempt: int) -> float:
        """Virtual backoff after the given 0-based failed attempt."""
        return min(
            self.backoff_base_ms * self.backoff_factor**attempt,
            self.backoff_max_ms,
        )


def run_with_retry(
    fn: Callable[[int], T],
    policy: RetryPolicy,
    metrics: Optional[MetricsRegistry] = None,
    description: str = "operation",
    tracer=None,
) -> T:
    """Run ``fn(attempt)`` until it succeeds or the budget runs out.

    ``fn`` receives the 0-based attempt nonce so callers can re-derive
    per-attempt noise streams.  Only
    :class:`~repro.util.errors.TransientError` triggers a retry; any
    other exception propagates immediately.  Backoff elapses in
    virtual time only (accounted into metrics, never slept).

    When a :class:`~repro.obs.trace.Tracer` is supplied, each attempt
    runs inside an ``attempt`` span (failed attempts record their
    transient error), and retries and exhaustion are logged.
    """
    last_error: Optional[TransientError] = None
    for attempt in range(policy.max_attempts):
        try:
            if tracer is not None:
                with tracer.span("attempt", attempt=attempt):
                    return fn(attempt)
            return fn(attempt)
        except TransientError as exc:
            last_error = exc
            if attempt + 1 >= policy.max_attempts:
                break
            backoff_ms = policy.backoff_ms(attempt)
            if metrics is not None:
                metrics.counter(RETRIES_COUNTER).increment()
                metrics.counter(BACKOFF_COUNTER).increment(int(backoff_ms))
            logger.info(
                "retrying after transient failure",
                extra={"fields": {
                    "description": description,
                    "attempt": attempt,
                    "backoff_virtual_ms": int(backoff_ms),
                    "error": str(exc),
                }},
            )
    logger.warning(
        "retries exhausted",
        extra={"fields": {
            "description": description,
            "max_attempts": policy.max_attempts,
            "error": str(last_error),
        }},
    )
    raise RetriesExhaustedError(description, policy.max_attempts, last_error)


@dataclass(frozen=True)
class FailedExperiment:
    """One experiment the campaign gave up on.

    Attributes:
        kind: driver vocabulary — ``"singleton"``, ``"pairwise"``,
            ``"peer-probe"``, ``"deployment"``.
        subject: human-readable subject (``"site 3"``, ``"pair (2, 5)"``).
        experiment_ids: the reserved ids the experiment consumed.
        error: the final error message.
        attempts: how many attempts were made before giving up.
        fault: the final attempt's fault kind (``"announcement"``,
            ``"convergence-timeout"``, ``"probe-blackout"``,
            ``"session-reset"``), or None when the last error carried
            no fault identity.  Lets the auditor distinguish a
            blackout cell from a timeout cell.
    """

    kind: str
    subject: str
    experiment_ids: Tuple[int, ...]
    error: str
    attempts: int
    fault: Optional[str] = None

    @classmethod
    def from_error(
        cls, kind: str, subject: str, experiment_ids, exc: Exception
    ) -> "FailedExperiment":
        """Build a record from the exception a driver caught."""
        return cls(
            kind=kind,
            subject=subject,
            experiment_ids=tuple(experiment_ids),
            error=str(exc),
            attempts=getattr(exc, "attempts", 1),
            fault=getattr(exc, "fault_kind", None),
        )

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "subject": self.subject,
            "experiment_ids": list(self.experiment_ids),
            "error": self.error,
            "attempts": self.attempts,
            "fault": self.fault,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "FailedExperiment":
        return cls(
            kind=raw["kind"],
            subject=raw["subject"],
            experiment_ids=tuple(raw["experiment_ids"]),
            error=raw["error"],
            attempts=raw["attempts"],
            # Pre-audit checkpoints have no fault column.
            fault=raw.get("fault"),
        )
