"""AnyOpt reproduction: predicting and optimizing IP anycast performance.

A faithful, laptop-scale reproduction of Zhang et al., "AnyOpt:
Predicting and Optimizing IP Anycast Performance" (SIGCOMM 2021), with
the paper's real-world BGP testbed replaced by a deterministic
event-driven BGP simulator over synthetic Internet topologies.

Quickstart::

    from repro import AnyOpt, build_paper_testbed

    testbed = build_paper_testbed(seed=7)
    anyopt = AnyOpt(testbed, seed=7)
    model = anyopt.discover()
    report = anyopt.optimize(model, sizes=[12])
    print(report.best_config, report.predicted_mean_rtt)

Packages:

- :mod:`repro.topology` — synthetic Internet + the Table 1 testbed;
- :mod:`repro.bgp` — the BGP propagation simulator;
- :mod:`repro.measurement` — Verfploeter-style catchment/RTT probes;
- :mod:`repro.core` — AnyOpt itself (experiments, preferences,
  prediction, optimization, peers);
- :mod:`repro.runtime` — campaign execution: pooled executors,
  convergence caching, noise settings, and metrics;
- :mod:`repro.splpo` — the SPLPO optimization model and solvers;
- :mod:`repro.audit` — prediction-integrity auditing and self-healing
  re-measurement;
- :mod:`repro.baselines` — the configurations AnyOpt is compared to.
"""

from repro.core import (
    AnycastConfig,
    AnyOpt,
    AnyOptModel,
    CatchmentPredictor,
    ExperimentRunner,
    Prediction,
    PredictionBatch,
    PreferenceMatrix,
    build_total_order,
)
from repro.measurement import Orchestrator, TargetSet, select_targets
from repro.runtime import CampaignSettings, ConvergenceCache, MetricsRegistry, make_executor
from repro.topology import (
    Testbed,
    TestbedParams,
    TopologyParams,
    build_paper_testbed,
    generate_internet,
)

# Imported after repro.core: the audit package reads the core model
# types (and repro.io, which itself imports repro.core).
from repro.audit import (
    AuditReport,
    AuditViolation,
    RepairReport,
    audit_model,
    repair_model,
)

__version__ = "1.0.0"

__all__ = [
    "AnyOpt",
    "AnyOptModel",
    "AnycastConfig",
    "AuditReport",
    "AuditViolation",
    "CampaignSettings",
    "CatchmentPredictor",
    "ConvergenceCache",
    "ExperimentRunner",
    "MetricsRegistry",
    "Orchestrator",
    "Prediction",
    "PredictionBatch",
    "PreferenceMatrix",
    "RepairReport",
    "TargetSet",
    "Testbed",
    "TestbedParams",
    "TopologyParams",
    "__version__",
    "audit_model",
    "build_paper_testbed",
    "build_total_order",
    "generate_internet",
    "make_executor",
    "repair_model",
    "select_targets",
]
