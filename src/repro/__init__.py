"""AnyOpt reproduction: predicting and optimizing IP anycast performance.

A faithful, laptop-scale reproduction of Zhang et al., "AnyOpt:
Predicting and Optimizing IP Anycast Performance" (SIGCOMM 2021), with
the paper's real-world BGP testbed replaced by a deterministic
event-driven BGP simulator over synthetic Internet topologies.

Quickstart::

    from repro import AnyOpt, build_paper_testbed

    testbed = build_paper_testbed(seed=7)
    anyopt = AnyOpt(testbed, seed=7)
    model = anyopt.discover()
    report = anyopt.optimize(model, sizes=[12])
    print(report.best_config, report.predicted_mean_rtt)

Packages:

- :mod:`repro.topology` — synthetic Internet + the Table 1 testbed;
- :mod:`repro.bgp` — the BGP propagation simulator;
- :mod:`repro.measurement` — Verfploeter-style catchment/RTT probes;
- :mod:`repro.core` — AnyOpt itself (experiments, preferences,
  prediction, optimization, peers);
- :mod:`repro.runtime` — campaign execution: pooled executors,
  convergence caching, noise settings, and metrics;
- :mod:`repro.splpo` — the SPLPO optimization model and solvers;
- :mod:`repro.baselines` — the configurations AnyOpt is compared to.
"""

from repro.core import (
    AnycastConfig,
    AnyOpt,
    AnyOptModel,
    CatchmentPredictor,
    ExperimentRunner,
    PreferenceMatrix,
    build_total_order,
)
from repro.measurement import Orchestrator, TargetSet, select_targets
from repro.runtime import CampaignSettings, ConvergenceCache, MetricsRegistry, make_executor
from repro.topology import (
    Testbed,
    TestbedParams,
    TopologyParams,
    build_paper_testbed,
    generate_internet,
)

__version__ = "1.0.0"

__all__ = [
    "AnyOpt",
    "AnyOptModel",
    "AnycastConfig",
    "CampaignSettings",
    "CatchmentPredictor",
    "ConvergenceCache",
    "ExperimentRunner",
    "MetricsRegistry",
    "Orchestrator",
    "PreferenceMatrix",
    "TargetSet",
    "Testbed",
    "TestbedParams",
    "TopologyParams",
    "__version__",
    "build_paper_testbed",
    "build_total_order",
    "generate_internet",
    "make_executor",
    "select_targets",
]
