"""Plain-text reporting: aligned tables and ASCII charts.

Used by the CLI and the examples to render measurement results without
any plotting dependency:

- :func:`render_table` — aligned columns with optional float formats;
- :func:`render_cdf` — an ASCII CDF plot of a sample;
- :func:`render_histogram` — a horizontal bar histogram;
- :func:`render_catchment_bars` — per-site catchment share bars;
- :func:`render_metrics` — campaign counters, timers, and phases;
- :func:`render_audit_report` — integrity-audit findings and quarantine;
- :func:`render_prediction_batch` — a typed prediction batch with its
  reason census;
- :func:`render_chaos_report` — the ``anyopt chaos`` verdict with its
  per-invariant evidence;
- :func:`render_heartbeat` / :func:`render_heartbeat_history` — the
  ``anyopt watch`` one-line campaign-progress format.
"""

from repro.report.text import (
    render_audit_report,
    render_catchment_bars,
    render_cdf,
    render_chaos_report,
    render_heartbeat,
    render_heartbeat_history,
    render_histogram,
    render_metrics,
    render_prediction_batch,
    render_table,
)

__all__ = [
    "render_audit_report",
    "render_catchment_bars",
    "render_cdf",
    "render_chaos_report",
    "render_heartbeat",
    "render_heartbeat_history",
    "render_histogram",
    "render_metrics",
    "render_prediction_batch",
    "render_table",
]
