"""ASCII rendering of tables, CDFs, histograms, and catchment shares."""

from typing import Dict, List, Optional, Sequence

from repro.util.errors import ReproError
from repro.util.stats import cdf_points, percentile


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    float_format: str = "{:.1f}",
) -> str:
    """Render rows as an aligned text table.

    >>> print(render_table(["site", "rtt"], [[1, 43.25], [2, 76.0]]))
    site  rtt
    ----  ----
    1     43.2
    2     76.0
    """
    if not headers:
        raise ReproError("a table needs at least one column")
    rendered: List[List[str]] = []
    for row in rows:
        if len(row) != len(headers):
            raise ReproError(
                f"row {row!r} has {len(row)} cells; expected {len(headers)}"
            )
        rendered.append(
            [
                float_format.format(cell) if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered)) if rendered else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip(),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def render_cdf(
    values: Sequence[float],
    width: int = 50,
    height: int = 12,
    label: str = "value",
) -> str:
    """Render a sample's CDF as an ASCII plot.

    The x-axis spans the sample's range; each row of the plot is a
    cumulative-fraction level, marked where the CDF crosses it.
    """
    if width < 10 or height < 4:
        raise ReproError("CDF plot needs width >= 10 and height >= 4")
    xs, fs = cdf_points(values)
    lo, hi = xs[0], xs[-1]
    span = hi - lo or 1.0
    lines: List[str] = []
    for level_idx in range(height, 0, -1):
        level = level_idx / height
        # First x at which the CDF reaches this level.
        col = None
        for x, f in zip(xs, fs):
            if f >= level:
                col = int((x - lo) / span * (width - 1))
                break
        row = [" "] * width
        if col is not None:
            for c in range(col, width):
                row[c] = "#" if c == col else "#"
        lines.append(f"{level:4.2f} |" + "".join(row))
    axis = f"     +{'-' * width}"
    p50 = percentile(values, 50)
    footer = (
        f"      {label}: min {lo:.1f}  median {p50:.1f}  max {hi:.1f}  "
        f"(n={len(xs)})"
    )
    return "\n".join(lines + [axis, footer])


def render_histogram(
    values: Sequence[float],
    bins: int = 10,
    width: int = 40,
    float_format: str = "{:.1f}",
) -> str:
    """Render a horizontal-bar histogram of a sample."""
    values = list(values)
    if not values:
        raise ReproError("histogram of empty sample")
    if bins < 1:
        raise ReproError("need at least one bin")
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    counts = [0] * bins
    for v in values:
        idx = min(bins - 1, int((v - lo) / span * bins))
        counts[idx] += 1
    peak = max(counts)
    lines = []
    for i, count in enumerate(counts):
        left = lo + span * i / bins
        right = lo + span * (i + 1) / bins
        bar = "#" * (int(count / peak * width) if peak else 0)
        lines.append(
            f"[{float_format.format(left):>8}, {float_format.format(right):>8})"
            f" {bar} {count}"
        )
    return "\n".join(lines)


def render_metrics(snapshot: Dict) -> str:
    """Render a campaign-metrics snapshot (the dict produced by
    :meth:`repro.runtime.metrics.MetricsRegistry.snapshot`) as aligned
    tables: one for counters/timers, one with percentile summaries per
    histogram, one row per campaign phase."""
    counters = snapshot.get("counters", {})
    timers = snapshot.get("timers", {})
    histograms = snapshot.get("histograms", {})
    phases = snapshot.get("phases", [])
    rows = [[name, str(counters[name])] for name in sorted(counters)]
    lookups = counters.get("convergence_cache_hits", 0) + counters.get(
        "convergence_cache_misses", 0
    )
    if lookups:
        hit_rate = counters.get("convergence_cache_hits", 0) / lookups
        rows.append(["convergence_cache_hit_rate", f"{hit_rate:.1%}"])
    if "audit_clients_quarantined" in counters:
        # The audit accounting row: how many quarantined clients the
        # optimizer actually dropped from its SPLPO input.
        rows.append(
            [
                "quarantined_excluded_from_splpo",
                str(counters.get("splpo_clients_excluded", 0)),
            ]
        )
    rows.extend(
        [
            name,
            f"{timers[name]['total_seconds']:.3f}s / {timers[name]['count']} section(s)",
        ]
        for name in sorted(timers)
    )
    if not rows and not histograms and not phases:
        return "(no campaign metrics recorded)"
    sections: List[str] = []
    if rows:
        sections.append(render_table(["metric", "value"], rows))
    if histograms:
        histogram_rows = [
            [
                name,
                histograms[name].get("count", 0),
                histograms[name].get("mean", 0.0),
                histograms[name].get("p50", 0.0),
                histograms[name].get("p90", 0.0),
                histograms[name].get("p99", 0.0),
                histograms[name].get("max", 0.0),
            ]
            for name in sorted(histograms)
        ]
        sections.append(
            render_table(
                ["histogram", "count", "mean", "p50", "p90", "p99", "max"],
                histogram_rows,
                float_format="{:.4g}",
            )
        )
    if phases:
        phase_rows = [
            [
                p["name"],
                f"{p['wall_seconds']:.3f}",
                p["counter_deltas"].get("experiments", 0),
                p["counter_deltas"].get("convergence_cache_hits", 0),
            ]
            for p in phases
        ]
        sections.append(
            render_table(
                ["phase", "wall (s)", "experiments", "cache hits"], phase_rows
            )
        )
    return "\n\n".join(sections)


def render_audit_report(report) -> str:
    """Render an :class:`~repro.audit.findings.AuditReport` as text:
    a headline, a findings-by-kind table, the quarantine accounting,
    and (when present) the ground-truth cross-check outcome."""
    quarantined = report.quarantined_clients()
    sections: List[str] = [
        f"audit: {report.total_findings()} finding(s) across "
        f"{len(report.clients)} of {report.clients_total} client(s); "
        f"{report.predictable_clients} predictable, "
        f"{len(quarantined)} quarantined (excluded from SPLPO input)"
    ]
    counts = report.counts_by_kind()
    if counts:
        sections.append(
            render_table(
                ["finding", "count"],
                [[kind, str(counts[kind])] for kind in sorted(counts)],
            )
        )
    if quarantined:
        shown = ", ".join(str(c) for c in quarantined[:20])
        suffix = ", ..." if len(quarantined) > 20 else ""
        sections.append(f"quarantined clients: {shown}{suffix}")
    if report.cross_check is not None:
        check = report.cross_check
        sections.append(
            f"cross-check: {len(check.configs)} config(s), "
            f"{check.checked} prediction(s) checked, "
            f"{len(check.mismatches)} mismatch(es), "
            f"accuracy {check.accuracy:.1%} (floor {check.min_accuracy:.1%})"
        )
    return "\n\n".join(sections)


def render_prediction_batch(batch, limit: int = 20) -> str:
    """Render a typed :class:`~repro.core.prediction.PredictionBatch`:
    headline summary, the per-reason census, and the first ``limit``
    predictions.  Degrades structurally on an empty or all-quarantined
    batch (no RTT, no rows) instead of raising."""
    mean_rtt = batch.mean_rtt_ms
    rtt_note = (
        f"; mean RTT {mean_rtt:.1f} ms" if mean_rtt is not None else "; no RTT available"
    )
    sections: List[str] = [
        f"predicted {batch.decided_count}/{len(batch)} client(s) under "
        f"sites {','.join(map(str, batch.config.site_order))}{rtt_note}"
    ]
    reasons = batch.counts_by_reason()
    if reasons:
        sections.append(
            render_table(
                ["reason", "clients"],
                [[reason, str(reasons[reason])] for reason in sorted(reasons)],
            )
        )
    rows = [
        [
            str(p.client_id),
            str(p.site) if p.site is not None else "-",
            f"{p.rtt_ms:.1f}" if p.rtt_ms is not None else "-",
            p.reason or "ok",
        ]
        for p in list(batch)[:limit]
    ]
    if rows:
        sections.append(render_table(["client", "site", "rtt (ms)", "status"], rows))
        if len(batch) > limit:
            sections.append(f"... {len(batch) - limit} more client(s)")
    return "\n\n".join(sections)


def _fmt_duration(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    seconds = int(seconds)
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    if seconds >= 60:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds}s"


def render_heartbeat(record: Dict) -> str:
    """Render one campaign heartbeat record as a single status line —
    the ``anyopt watch`` display format::

        [  42] discover     8m20s  done 512/1200 (42.7%)  3.2/s  cache 91.2%  eta 3m35s

    Missing optional fields (no total hint, no cache traffic) render
    as omissions, not zeros; a ``final`` record is flagged, and a
    record carrying an ``error`` shows it.
    """
    parts = [
        f"[{record.get('seq', '?'):>4}]",
        f"{(record.get('phase') or record.get('campaign', 'campaign')):<12}",
        f"{_fmt_duration(record.get('elapsed_s', 0)):>7}",
    ]
    done = record.get("experiments_done", 0)
    total = record.get("experiments_total")
    if total:
        parts.append(f"done {done}/{total} ({100.0 * done / total:.1f}%)")
    else:
        parts.append(f"done {done}")
    parts.append(f"{record.get('experiments_per_s', 0.0):.1f}/s")
    hit_rate = record.get("cache_hit_rate")
    if hit_rate is not None:
        parts.append(f"cache {100.0 * hit_rate:.1f}%")
    failed = record.get("experiments_failed", 0)
    if failed:
        parts.append(f"failed {failed}")
    if total:
        parts.append(f"eta {_fmt_duration(record.get('eta_s'))}")
    if record.get("error"):
        parts.append(f"ERROR: {record['error']}")
    if record.get("final"):
        parts.append("(final)")
    return "  ".join(parts)


def render_heartbeat_history(records: Sequence[Dict]) -> str:
    """Render a whole heartbeat file, one line per record."""
    if not records:
        raise ReproError("no heartbeat records to render")
    return "\n".join(render_heartbeat(record) for record in records)


def render_catchment_bars(
    catchment_sizes: Dict[int, int],
    total: Optional[int] = None,
    width: int = 40,
) -> str:
    """Render each site's catchment share as a horizontal bar, e.g.
    ``site 4  ############  165 ( 33.1%)``."""
    if not catchment_sizes:
        raise ReproError("no catchments to render")
    denominator = total if total is not None else sum(catchment_sizes.values())
    if denominator <= 0:
        raise ReproError("catchment total must be positive")
    lines = []
    for site in sorted(catchment_sizes):
        count = catchment_sizes[site]
        frac = count / denominator
        bar = "#" * max(1 if count else 0, int(frac * width))
        lines.append(
            f"site {site:<2} {bar:<{width // 2 * 2}} {count:>4} ({100 * frac:5.1f}%)"
        )
    return "\n".join(lines)


def render_chaos_report(report) -> str:
    """Render a :class:`~repro.serve.chaos.ChaosReport`: the verdict
    headline, what was injected, the status census, and one line per
    invariant with its evidence."""
    doc = report.to_dict() if hasattr(report, "to_dict") else dict(report)
    verdict = "PASS" if doc["passed"] else "FAIL"
    sections: List[str] = [
        f"chaos: {verdict} — seed {doc['seed']}, {doc['requests']} request "
        f"event(s), {sum(doc['publishes'].values())} publish(es), "
        f"{doc['duration_s']:.1f}s ({doc['mode']})"
    ]
    faults = doc["faults_injected"]
    if faults:
        sections.append(
            render_table(
                ["fault", "count"],
                [[kind, str(faults[kind])] for kind in sorted(faults)],
            )
        )
    statuses = doc["statuses"]
    if statuses:
        sections.append(
            render_table(
                ["outcome", "count"],
                [[key, str(statuses[key])] for key in sorted(statuses)],
            )
        )
    sections.append(
        f"answers checked: {doc['answers_checked']}, "
        f"mismatches: {len(doc['mismatches'])}, "
        f"unexpected 5xx: {len(doc['internal_errors'])}, "
        f"sheds observed: {doc['sheds_observed']}"
    )
    sections.append(
        f"model versions: final {doc['final_version'] or '?'} "
        f"(expected {doc['expected_final_version']}), "
        f"seen while storming: {', '.join(doc['versions_seen']) or '-'}"
    )
    lines = []
    for inv in doc["invariants"]:
        mark = "ok " if inv["passed"] else "FAIL"
        lines.append(f"[{mark}] {inv['name']}: {inv['detail']}")
    sections.append("\n".join(lines))
    return "\n\n".join(sections)
