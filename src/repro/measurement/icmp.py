"""Probe-level ICMP simulation: loss and jitter.

Each echo request either disappears (per-target loss rate) or returns
with the path's true RTT plus queueing jitter.  Jitter is modeled as a
small always-present component plus an occasional congestion spike —
exactly the outliers the paper's median-of-seven filtering exists to
remove.
"""

from dataclasses import dataclass
from typing import List, Optional

from repro.measurement.targets import PingTarget
from repro.util.rng import derive_rng


@dataclass(frozen=True)
class ProbeResult:
    """One echo request's outcome."""

    target_id: int
    sequence: int
    rtt_ms: Optional[float]

    @property
    def lost(self) -> bool:
        return self.rtt_ms is None


class IcmpProber:
    """Simulates echo requests against known true path RTTs.

    Determinism: probes are seeded by ``(seed, experiment_id,
    target_id, sequence)`` so repeating an experiment reproduces the
    same loss pattern and jitter, while distinct experiments see
    independent noise.
    """

    #: Typical magnitude of per-probe queueing jitter (ms).
    BASE_JITTER_MS = 0.6
    #: Probability that a probe hits a congestion spike.
    SPIKE_PROB = 0.04
    #: Mean size of a congestion spike (ms, exponential).
    SPIKE_MEAN_MS = 25.0

    def __init__(self, seed=0):
        self.seed = seed

    def probe(
        self,
        target: PingTarget,
        true_rtt_ms: float,
        experiment_id: int,
        sequence: int,
    ) -> ProbeResult:
        """Send one echo request; returns a lost probe or a sample."""
        rng = derive_rng(self.seed, "icmp", experiment_id, target.target_id, sequence)
        if rng.random() < target.loss_rate:
            return ProbeResult(target.target_id, sequence, None)
        jitter = abs(rng.gauss(0.0, self.BASE_JITTER_MS))
        if rng.random() < self.SPIKE_PROB:
            jitter += rng.expovariate(1.0 / self.SPIKE_MEAN_MS)
        return ProbeResult(target.target_id, sequence, true_rtt_ms + jitter)

    def probe_train(
        self,
        target: PingTarget,
        true_rtt_ms: float,
        experiment_id: int,
        count: int = 7,
    ) -> List[ProbeResult]:
        """The paper's seven-probe train for one target."""
        return [
            self.probe(target, true_rtt_ms, experiment_id, seq)
            for seq in range(count)
        ]
