"""Catchment mapping (the Verfploeter technique).

An echo request is sent to each target with the anycast prefix as its
source address; the reply routes to the target's catchment site and
arrives at the orchestrator through that site's GRE tunnel, which
identifies the catchment (S3, "Measuring Catchments").  A target whose
probes are all lost stays unmapped for that experiment.
"""

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Set

from repro.measurement.icmp import IcmpProber
from repro.measurement.targets import PingTarget
from repro.util.errors import MeasurementError


@dataclass
class CatchmentMap:
    """target id -> catchment site id (None while unmapped)."""

    experiment_id: int
    mapping: Dict[int, Optional[int]] = field(default_factory=dict)

    def site_of(self, target_id: int) -> Optional[int]:
        try:
            return self.mapping[target_id]
        except KeyError:
            raise MeasurementError(
                f"target {target_id} was not probed in experiment "
                f"{self.experiment_id}"
            ) from None

    def targets_of_site(self, site_id: int) -> Set[int]:
        return {t for t, s in self.mapping.items() if s == site_id}

    def mapped_count(self) -> int:
        return sum(1 for s in self.mapping.values() if s is not None)

    def catchment_sizes(self) -> Dict[int, int]:
        sizes: Dict[int, int] = {}
        for site in self.mapping.values():
            if site is not None:
                sizes[site] = sizes.get(site, 0) + 1
        return sizes


def measure_catchments(
    deployment,
    targets: Iterable[PingTarget],
    prober: IcmpProber,
    retries: int = 3,
) -> CatchmentMap:
    """Map every target's catchment under ``deployment``.

    ``deployment`` must expose ``experiment_id``, ``forwarding(target)``
    and ``true_rtt(target)`` (see
    :class:`repro.measurement.orchestrator.Deployment`).  Each target is
    probed up to ``1 + retries`` times; loss applies per probe.
    """
    cmap = CatchmentMap(experiment_id=deployment.experiment_id)
    for target in targets:
        outcome = deployment.forwarding(target)
        if outcome is None:
            # No route back to any site: the reply never arrives.
            cmap.mapping[target.target_id] = None
            continue
        site: Optional[int] = None
        true_rtt = deployment.true_rtt(target)
        for attempt in range(1 + retries):
            result = prober.probe(
                target, true_rtt, deployment.experiment_id, sequence=100 + attempt
            )
            if not result.lost:
                site = outcome.site_id
                break
        cmap.mapping[target.target_id] = site
    return cmap
