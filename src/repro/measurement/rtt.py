"""Site-to-target RTT estimation.

The paper's protocol (S3, "Measuring RTTs"): announce the prefix from a
single site, probe each target seven times from the orchestrator
through that site's tunnel, take the median of the valid replies, and
subtract the separately estimated tunnel RTT.  At least three valid
replies are required for a sample.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.measurement.icmp import IcmpProber
from repro.measurement.targets import PingTarget
from repro.measurement.tunnels import TunnelManager
from repro.util.errors import MeasurementError
from repro.util.stats import mean, median

#: Probes per target per RTT measurement (the paper uses seven).
PROBES_PER_TARGET = 7
#: Minimum valid replies for a usable median (the paper uses three).
MIN_VALID_REPLIES = 3


def estimate_rtt(
    prober: IcmpProber,
    tunnels: TunnelManager,
    target: PingTarget,
    site_id: int,
    true_path_rtt_ms: float,
    experiment_id: int,
    probes: int = PROBES_PER_TARGET,
    min_valid: int = MIN_VALID_REPLIES,
) -> Optional[float]:
    """Estimate the RTT between ``site_id`` and ``target``.

    Returns None when fewer than ``min_valid`` replies survive loss.
    The estimate can differ from the true path RTT through probe
    jitter and tunnel-estimate error — the noise floor visible in the
    paper's Figure 5b/5c.
    """
    tunnel = tunnels.tunnel(site_id)
    samples: List[float] = []
    for seq in range(probes):
        result = prober.probe(
            target, true_path_rtt_ms + tunnel.true_rtt_ms, experiment_id, seq
        )
        if not result.lost:
            samples.append(result.rtt_ms)
    if len(samples) < min_valid:
        return None
    return max(0.0, median(samples) - tunnel.estimated_rtt_ms)


@dataclass
class RttMatrix:
    """Estimated RTTs from every site to every target.

    Built from one singleton BGP experiment per site; the paper needs
    ``O(|S|)`` such experiments (S3.4).
    """

    values: Dict[Tuple[int, int], Optional[float]] = field(default_factory=dict)

    def set(self, site_id: int, target_id: int, rtt_ms: Optional[float]) -> None:
        self.values[(site_id, target_id)] = rtt_ms

    def rtt(self, site_id: int, target_id: int) -> Optional[float]:
        try:
            return self.values[(site_id, target_id)]
        except KeyError:
            raise MeasurementError(
                f"no RTT measurement for site {site_id}, target {target_id}"
            ) from None

    def has(self, site_id: int, target_id: int) -> bool:
        return self.values.get((site_id, target_id)) is not None

    def sites(self) -> List[int]:
        return sorted({s for s, _ in self.values})

    def mean_unicast_rtt(self, site_id: int) -> float:
        """Mean RTT from one site to all measurable targets — the
        ranking criterion of the paper's greedy baseline (S5.3)."""
        rtts = [v for (s, _), v in self.values.items() if s == site_id and v is not None]
        if not rtts:
            raise MeasurementError(f"site {site_id} has no valid RTT samples")
        return mean(rtts)

    def best_site_for(self, target_id: int) -> Optional[int]:
        """The site with the lowest measured RTT to ``target_id``."""
        best: Optional[Tuple[float, int]] = None
        for (s, t), v in self.values.items():
            if t == target_id and v is not None and (best is None or v < best[0]):
                best = (v, s)
        return best[1] if best else None
