"""Ping-target selection.

The paper's targets are routers in or near client networks, chosen by
merging end-user paths into a tree and picking the common ancestor
closest to the end users (S3.2) — 15,300 addresses across 12,143 /24
prefixes and 5,317 ASes.  Here targets are synthesized per client AS of
the generated topology: each target carries a last-mile RTT (the
distance between the representative router and the AS border) and a
loss rate, so the median-of-seven filtering in the RTT estimator has
something to filter.
"""

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence

from repro.topology.generator import Internet
from repro.util.errors import MeasurementError
from repro.util.rng import derive_rng


@dataclass(frozen=True)
class PingTarget:
    """A representative router address inside a client network.

    ``weight`` is the client network's workload share (e.g. query
    volume); Appendix B's weighted objective multiplies each client's
    RTT by it.
    """

    target_id: int
    asn: int
    prefix: str
    last_mile_rtt_ms: float
    loss_rate: float
    weight: float = 1.0

    def __post_init__(self):
        if not 0.0 <= self.loss_rate < 1.0:
            raise MeasurementError(
                f"target {self.target_id}: loss rate must be in [0, 1)"
            )
        if self.last_mile_rtt_ms < 0:
            raise MeasurementError(
                f"target {self.target_id}: negative last-mile RTT"
            )
        if self.weight <= 0:
            raise MeasurementError(
                f"target {self.target_id}: weight must be positive"
            )


class TargetSet:
    """An ordered collection of ping targets with per-AS lookup."""

    def __init__(self, targets: Sequence[PingTarget]):
        self._targets = list(targets)
        self._by_asn: Dict[int, List[PingTarget]] = {}
        seen = set()
        for t in self._targets:
            if t.target_id in seen:
                raise MeasurementError(f"duplicate target id {t.target_id}")
            seen.add(t.target_id)
            self._by_asn.setdefault(t.asn, []).append(t)

    def __len__(self) -> int:
        return len(self._targets)

    def __iter__(self) -> Iterator[PingTarget]:
        return iter(self._targets)

    def __getitem__(self, index: int) -> PingTarget:
        return self._targets[index]

    def asns(self) -> List[int]:
        return sorted(self._by_asn)

    def in_as(self, asn: int) -> List[PingTarget]:
        return list(self._by_asn.get(asn, ()))

    def by_id(self, target_id: int) -> PingTarget:
        # Target ids are assigned densely by select_targets, so direct
        # indexing is valid there; this method is the safe general path.
        for t in self._targets:
            if t.target_id == target_id:
                return t
        raise MeasurementError(f"unknown target {target_id}")


def select_targets(
    internet: Internet,
    targets_per_as_min: int = 1,
    targets_per_as_max: int = 4,
    lossy_fraction: float = 0.08,
    max_loss_rate: float = 0.35,
    weighted: bool = False,
    seed=0,
) -> TargetSet:
    """Select ping targets for every client AS of ``internet``.

    Mirrors the paper's density of roughly three targets per client AS.
    A small fraction of targets sits behind lossy links; the RTT
    estimator must still produce a median from at least three valid
    replies for them (S3, "Measuring RTTs").

    With ``weighted=True`` each target carries a heavy-tailed workload
    weight (lognormal), for Appendix B's workload-weighted objective;
    otherwise all weights are 1.
    """
    if targets_per_as_min < 1 or targets_per_as_max < targets_per_as_min:
        raise MeasurementError("invalid targets-per-AS bounds")
    rng = derive_rng(seed, "targets")
    targets: List[PingTarget] = []
    next_id = 0
    for asn in internet.graph.client_asns():
        if not internet.graph.as_of(asn).hosts_clients:
            # Content/infrastructure stubs serve no end users: nothing
            # worth probing lives there (S3.2 targets sit near users).
            continue
        count = rng.randint(targets_per_as_min, targets_per_as_max)
        for i in range(count):
            lossy = rng.random() < lossy_fraction
            targets.append(
                PingTarget(
                    target_id=next_id,
                    asn=asn,
                    prefix=f"10.{(asn >> 8) & 255}.{asn & 255}.{i}/24",
                    last_mile_rtt_ms=round(rng.uniform(0.5, 12.0), 3),
                    loss_rate=round(rng.uniform(0.05, max_loss_rate), 3) if lossy else 0.0,
                    weight=round(rng.lognormvariate(0.0, 1.0), 4) if weighted else 1.0,
                )
            )
            next_id += 1
    if not targets:
        raise MeasurementError("topology has no client ASes to target")
    return TargetSet(targets)
