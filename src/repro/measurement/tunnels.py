"""GRE tunnels between the orchestrator and the anycast sites.

The testbed's single GoBGP orchestrator reaches every site router over
a GRE tunnel (S3.1).  Measured orchestrator-to-target RTTs include the
tunnel RTT of the reply's catchment site, which the estimator subtracts
(S3, "Measuring RTTs"); the quality of that subtraction depends on the
periodically re-measured tunnel RTT estimate, so the tunnel model keeps
a true value and a noisy estimate separately.
"""

from dataclasses import dataclass
from typing import Dict

from repro.topology.geo import propagation_rtt_ms
from repro.topology.testbed import Testbed
from repro.util.errors import MeasurementError
from repro.util.rng import derive_rng
from repro.util.stats import median


@dataclass(frozen=True)
class GreTunnel:
    """One orchestrator-to-site tunnel."""

    site_id: int
    true_rtt_ms: float
    estimated_rtt_ms: float


class TunnelManager:
    """Builds and periodically re-estimates the site tunnels."""

    #: Encapsulation and processing overhead added to the propagation RTT.
    OVERHEAD_MS = 1.2
    #: Number of samples in each periodic tunnel measurement.
    SAMPLES = 9

    def __init__(self, testbed: Testbed, seed=0):
        self.testbed = testbed
        self.seed = seed
        self._tunnels: Dict[int, GreTunnel] = {}
        for site_id in testbed.site_ids():
            site = testbed.site(site_id)
            true_rtt = (
                propagation_rtt_ms(testbed.orchestrator_location, site.location)
                + self.OVERHEAD_MS
            )
            self._tunnels[site_id] = GreTunnel(
                site_id=site_id,
                true_rtt_ms=true_rtt,
                estimated_rtt_ms=self._estimate(site_id, true_rtt, epoch=0),
            )

    def tunnel(self, site_id: int) -> GreTunnel:
        try:
            return self._tunnels[site_id]
        except KeyError:
            raise MeasurementError(f"no tunnel to site {site_id}") from None

    def refresh(self, epoch: int) -> None:
        """Re-measure every tunnel (the paper does this periodically)."""
        for site_id, tun in list(self._tunnels.items()):
            self._tunnels[site_id] = GreTunnel(
                site_id=site_id,
                true_rtt_ms=tun.true_rtt_ms,
                estimated_rtt_ms=self._estimate(site_id, tun.true_rtt_ms, epoch),
            )

    def _estimate(self, site_id: int, true_rtt: float, epoch: int) -> float:
        rng = derive_rng(self.seed, "tunnel", site_id, epoch)
        samples = [
            true_rtt + abs(rng.gauss(0.0, 0.4)) for _ in range(self.SAMPLES)
        ]
        return median(samples)
