"""The measurement orchestrator: deploys configurations and measures.

This is the simulated counterpart of the paper's GoBGP box (S3.1): it
turns an :class:`~repro.core.config.AnycastConfig` into BGP injections,
runs them to convergence, and offers catchment and RTT measurements
over the resulting data plane.  Every deployment is one "BGP
experiment" — the unit the paper's measurement budget counts (S4.5) —
and the orchestrator keeps a running tally.
"""

import threading
import time
from typing import Dict, Iterable, List, Optional, Tuple

from repro.util.rng import derive_rng, stable_hash

from repro.bgp.dataplane import DataPlane, ForwardingOutcome
from repro.bgp.engine import BGPEngine, ConvergedState, SiteInjection
from repro.core.config import AnycastConfig
from repro.measurement.icmp import IcmpProber
from repro.measurement.rtt import RttMatrix, estimate_rtt
from repro.measurement.targets import PingTarget, TargetSet
from repro.measurement.tunnels import TunnelManager
from repro.measurement.verfploeter import CatchmentMap, measure_catchments
from repro.obs.log import get_logger
from repro.obs.trace import Tracer
from repro.runtime.cache import ConvergenceCache
from repro.runtime.executor import CampaignExecutor, SerialExecutor
from repro.runtime.faults import FaultInjector
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.retry import FailedExperiment, RetryPolicy, run_with_retry
from repro.runtime.settings import CampaignSettings, resolve_settings
from repro.topology.astopo import Relationship
from repro.topology.testbed import Testbed
from repro.util.errors import ConfigurationError, MeasurementError
from repro.util.stats import mean

logger = get_logger("orchestrator")


class Deployment:
    """One deployed configuration: converged control plane + data plane."""

    def __init__(
        self,
        orchestrator: "Orchestrator",
        config: AnycastConfig,
        converged: ConvergedState,
        experiment_id: int,
    ):
        self.orchestrator = orchestrator
        self.config = config
        self.converged = converged
        self.experiment_id = experiment_id
        self.dataplane = DataPlane(
            orchestrator.testbed.internet, converged, flow_nonce=experiment_id
        )
        self._forwarding_cache: Dict[int, Optional[ForwardingOutcome]] = {}
        self._probe_session_ok = False

    def _ensure_probe_session(self) -> None:
        """Survive injected probe blackouts before any measurement.

        A blackout kills every probe of the measurement session; the
        retry policy re-establishes the session in virtual time.  The
        check runs once per deployment (the blackout stream is keyed
        per experiment) and raises
        :class:`~repro.util.errors.RetriesExhaustedError` when the
        blackout outlasts the retry budget.
        """
        if self._probe_session_ok:
            return
        orchestrator = self.orchestrator
        if orchestrator.faults.enabled("probe-blackout"):
            run_with_retry(
                lambda attempt: orchestrator.faults.raise_if(
                    "probe-blackout", self.experiment_id, attempt
                ),
                orchestrator.retry_policy,
                metrics=orchestrator.metrics,
                description=f"probe session of experiment {self.experiment_id}",
                tracer=orchestrator.tracer,
            )
        self._probe_session_ok = True

    # -- data plane ---------------------------------------------------------

    def forwarding(self, target: PingTarget) -> Optional[ForwardingOutcome]:
        """Where this target's anycast traffic lands (cached)."""
        cached = self._forwarding_cache.get(target.target_id, _MISSING)
        if cached is not _MISSING:
            return cached
        outcome = self.dataplane.forward(target.asn, target.target_id)
        self._forwarding_cache[target.target_id] = outcome
        return outcome

    def true_rtt(self, target: PingTarget) -> Optional[float]:
        """Ground-truth RTT between the target and its catchment site.

        Includes the orchestrator's per-experiment path-RTT drift:
        real paths change slightly between the time a site's unicast
        RTT was measured and the time a configuration is deployed,
        which is the noise floor behind Figure 5b/5c.
        """
        outcome = self.forwarding(target)
        if outcome is None:
            return None
        drift = self.orchestrator.rtt_drift_factor(self.experiment_id, target.target_id)
        return outcome.rtt_ms * drift + target.last_mile_rtt_ms

    # -- measurements ---------------------------------------------------------

    def measure_catchments(self, targets: Optional[Iterable[PingTarget]] = None) -> CatchmentMap:
        """Verfploeter-style catchment map of this deployment."""
        targets = self.orchestrator.targets if targets is None else list(targets)
        with self.orchestrator.tracer.span(
            "probe",
            kind="catchment",
            experiment_id=self.experiment_id,
            targets=len(targets),
        ):
            self._ensure_probe_session()
            return measure_catchments(self, targets, self.orchestrator.prober)

    def measure_rtt(self, target: PingTarget) -> Optional[float]:
        """Median-of-seven RTT estimate to the target's catchment site."""
        self._ensure_probe_session()
        outcome = self.forwarding(target)
        if outcome is None:
            return None
        return estimate_rtt(
            self.orchestrator.prober,
            self.orchestrator.tunnels,
            target,
            outcome.site_id,
            self.true_rtt(target),
            self.experiment_id,
        )

    def measure_mean_rtt(
        self, targets: Optional[Iterable[PingTarget]] = None
    ) -> Optional[float]:
        """Mean measured RTT over all reachable targets — the paper's
        per-configuration performance figure (S5.2/S5.3).

        Returns None when *no* target produced a sample (every probe
        lost, or an empty target set): an all-unreachable deployment
        is a typed empty outcome, not an exception, so optimizer and
        baseline sweeps can skip the configuration and continue.
        """
        targets = self.orchestrator.targets if targets is None else targets
        rtts = [r for r in (self.measure_rtt(t) for t in targets) if r is not None]
        if not rtts:
            self.orchestrator.metrics.counter("measurements_empty").increment()
            logger.warning(
                "no reachable targets for deployment",
                extra={"fields": {"experiment_id": self.experiment_id}},
            )
            return None
        return mean(rtts)


_MISSING = object()


class Orchestrator:
    """Deploys anycast configurations on the simulated Internet.

    The noise knobs live in a :class:`CampaignSettings` value (the old
    per-knob constructor kwargs still work but are deprecated):

    - ``session_churn_prob``: per-experiment probability that an AS's
      interior-routing state changed since the topology was built;
      churned ASes get fresh session costs for that run.  This is the
      measurement-to-deployment drift that keeps real catchment
      prediction below 100% accurate.
    - ``rtt_drift_sigma``: relative standard deviation of
      per-experiment path-RTT drift.

    Campaign drivers reserve experiment ids *before* dispatching work
    (:meth:`reserve_experiment_ids`), which is what makes pooled
    execution bit-identical to the serial path: every seeded noise
    stream is keyed by experiment id, never by completion order.
    """

    def __init__(
        self,
        testbed: Testbed,
        targets: TargetSet,
        seed=0,
        settings: Optional[CampaignSettings] = None,
        *,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        session_churn_prob: Optional[float] = None,
        rtt_drift_sigma: Optional[float] = None,
        rtt_bias_sigma: Optional[float] = None,
        bgp_delay_jitter_ms: Optional[float] = None,
    ):
        self.settings = resolve_settings(
            settings,
            "Orchestrator",
            stacklevel=3,
            session_churn_prob=session_churn_prob,
            rtt_drift_sigma=rtt_drift_sigma,
            rtt_bias_sigma=rtt_bias_sigma,
            bgp_delay_jitter_ms=bgp_delay_jitter_ms,
        )
        self.testbed = testbed
        self.targets = targets
        self.seed = seed
        self.session_churn_prob = self.settings.session_churn_prob
        self.rtt_drift_sigma = self.settings.rtt_drift_sigma
        self.rtt_bias_sigma = self.settings.rtt_bias_sigma
        self.bgp_delay_jitter_ms = self.settings.bgp_delay_jitter_ms
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        store = None
        if self.settings.convergence_cache and self.settings.convergence_cache_path:
            # Imported here: repro.io imports repro.core, which imports
            # this module, so a module-level import would be a cycle.
            from repro.bgp.engine import DEFAULT_ANYCAST_PREFIX
            from repro.io.cachestore import ConvergenceStore

            store = ConvergenceStore.for_topology(
                self.settings.convergence_cache_path,
                testbed.internet.graph,
                DEFAULT_ANYCAST_PREFIX,
                engine_mode=self.settings.engine_mode,
                aggregate_stubs=self.settings.aggregate_stubs,
            )
        self.convergence_cache = (
            ConvergenceCache(
                self.settings.convergence_cache_size,
                metrics=self.metrics,
                store=store,
            )
            if self.settings.convergence_cache
            else None
        )
        self.engine = BGPEngine(
            testbed.internet,
            cache=self.convergence_cache,
            metrics=self.metrics,
            tracer=self.tracer,
            mode=self.settings.engine_mode,
            aggregate_stubs=self.settings.aggregate_stubs,
            max_events=self.settings.max_convergence_events,
        )
        self.prober = IcmpProber(seed=seed)
        self.tunnels = TunnelManager(testbed, seed=seed)
        self.faults = FaultInjector(
            seed, self.settings, metrics=self.metrics, tracer=self.tracer
        )
        self.retry_policy = RetryPolicy.from_settings(self.settings)
        self._experiment_count = 0
        self._id_lock = threading.Lock()
        #: Ids already consumed by a deployment (reuse is an error).
        self._used_ids: set = set()
        #: Ids at or below this floor are consumed (checkpoint restore).
        self._used_floor = 0
        #: Experiments the campaign gave up on, in campaign order.
        self.failures: List[FailedExperiment] = []
        self._failure_lock = threading.Lock()

    @property
    def experiment_count(self) -> int:
        """BGP experiments consumed (or reserved) so far — the unit
        the paper's measurement budget counts (S4.5)."""
        return self._experiment_count

    # -- deployment -----------------------------------------------------------

    def reserve_experiment_ids(self, count: int) -> range:
        """Claim the next ``count`` experiment ids, in serial order.

        Campaign executors reserve ids for a whole batch up front and
        then deploy concurrently; because ids — not completion times —
        seed the churn/jitter/drift streams, the results match a
        serial run experiment for experiment.
        """
        if count < 0:
            raise ConfigurationError("cannot reserve a negative id count")
        with self._id_lock:
            start = self._experiment_count + 1
            self._experiment_count += count
        return range(start, start + count)

    def _claim_experiment_id(self, experiment_id: Optional[int]) -> int:
        """Validate and consume one experiment id.

        A reused or never-reserved id would duplicate noise streams and
        silently corrupt pooled-vs-serial determinism, so both are
        rejected with :class:`ConfigurationError`.
        """
        with self._id_lock:
            if experiment_id is None:
                self._experiment_count += 1
                experiment_id = self._experiment_count
            elif experiment_id < 1 or experiment_id > self._experiment_count:
                raise ConfigurationError(
                    f"experiment id {experiment_id} was never reserved "
                    f"(reserved ids run 1..{self._experiment_count}); use "
                    "reserve_experiment_ids()"
                )
            elif experiment_id <= self._used_floor or experiment_id in self._used_ids:
                raise ConfigurationError(
                    f"experiment id {experiment_id} was already deployed; "
                    "reusing an id would duplicate its noise streams"
                )
            self._used_ids.add(experiment_id)
        return experiment_id

    def adopt_reserved_ids(self, experiment_ids: Iterable[int]) -> None:
        """Recognise ids reserved by a *coordinating* orchestrator.

        A process-pool worker's orchestrator never reserves ids itself
        — the main-process orchestrator reserved them serially before
        dispatch — so the worker extends its id space to cover the
        incoming task's ids before deploying them.  Each task runs on
        exactly one worker, so the per-worker used-id set still catches
        local reuse.
        """
        top = max(experiment_ids, default=0)
        with self._id_lock:
            if top > self._experiment_count:
                self._experiment_count = top

    def restore_experiment_state(self, experiment_count: int) -> None:
        """Fast-forward the id space past a checkpoint's experiments.

        Ids ``1..experiment_count`` are treated as consumed, so a
        resumed campaign reserves exactly the ids an uninterrupted run
        would have used for the remaining experiments — which is what
        keeps the resumed model bit-identical.
        """
        with self._id_lock:
            if experiment_count < self._experiment_count:
                raise ConfigurationError(
                    f"cannot restore experiment count to {experiment_count}: "
                    f"{self._experiment_count} experiments already reserved"
                )
            self._experiment_count = experiment_count
            self._used_floor = experiment_count
            self._used_ids.clear()

    def record_failure(self, failure: FailedExperiment) -> None:
        """Record one degraded experiment (drivers call this in task
        order, so the failure log is deterministic under pooling)."""
        with self._failure_lock:
            self.failures.append(failure)
        self.metrics.counter("experiments_failed").increment()
        logger.warning(
            "experiment degraded",
            extra={"fields": {
                "kind": failure.kind,
                "subject": failure.subject,
                "experiment_ids": list(failure.experiment_ids),
                "attempts": failure.attempts,
                "error": failure.error,
            }},
        )

    def deploy(
        self, config: AnycastConfig, experiment_id: Optional[int] = None
    ) -> Deployment:
        """Announce ``config`` and converge; counts as one BGP experiment.

        ``experiment_id`` accepts an id obtained from
        :meth:`reserve_experiment_ids`; by default the next id is
        claimed on the spot (the serial path).  Injected transient
        faults (session resets, announcement failures, convergence
        timeouts) are retried under the settings' retry policy; when
        the budget runs out the typed
        :class:`~repro.util.errors.RetriesExhaustedError` escapes for
        the campaign driver to record.
        """
        experiment_id = self._claim_experiment_id(experiment_id)
        injections = self._injections(config)
        attempts_used = [0]

        def attempt_deploy(attempt: int) -> ConvergedState:
            attempts_used[0] = attempt + 1
            with self.tracer.span("announce", injections=len(injections)):
                self.faults.raise_if("session-reset", experiment_id, attempt)
                self.faults.raise_if("announcement", experiment_id, attempt)
            with self.metrics.timer("deploy").time():
                converged = self.engine.run(
                    injections,
                    igp_overlay=self._igp_overlay(experiment_id),
                    delay_jitter_ms=self.bgp_delay_jitter_ms,
                    delay_nonce=experiment_id,
                )
            self.faults.raise_if("convergence-timeout", experiment_id, attempt)
            return converged

        start = time.perf_counter()
        with self.tracer.span(
            "deploy",
            experiment_id=experiment_id,
            site_order=list(config.site_order),
            peer_ids=list(config.peer_ids),
        ) as span:
            try:
                converged = run_with_retry(
                    attempt_deploy,
                    self.retry_policy,
                    metrics=self.metrics,
                    description=f"deployment of experiment {experiment_id}",
                    tracer=self.tracer,
                )
            finally:
                span.set_attribute("attempts", attempts_used[0])
                span.set_attribute("retries", max(0, attempts_used[0] - 1))
                self.metrics.histogram("experiment_wall_s").observe(
                    time.perf_counter() - start
                )
        self.metrics.counter("experiments").increment()
        logger.debug(
            "deployed configuration",
            extra={"fields": {
                "experiment_id": experiment_id,
                "sites": list(config.site_order),
                "attempts": attempts_used[0],
            }},
        )
        return Deployment(self, config, converged, experiment_id)

    # -- drift models -----------------------------------------------------------

    def _igp_overlay(self, experiment_id: int) -> Dict[Tuple[int, int], int]:
        """Interior-cost overrides for one experiment's churned ASes."""
        if self.session_churn_prob == 0.0:
            return {}
        rng = derive_rng(self.seed, "igp-churn", experiment_id)
        graph = self.testbed.internet.graph
        tie_fraction = self.testbed.internet.params.igp_tie_fraction
        overlay: Dict[Tuple[int, int], int] = {}
        for asn in graph.asns():
            if rng.random() >= self.session_churn_prob:
                continue
            tie_prone = rng.random() < tie_fraction
            for neighbor in graph.neighbors(asn):
                if tie_prone:
                    overlay[(asn, neighbor)] = 0
                else:
                    overlay[(asn, neighbor)] = 1 + stable_hash(
                        self.seed, "igp-churn", experiment_id, asn, neighbor
                    ) % 1_000_000
        return overlay

    def rtt_drift_factor(self, experiment_id: int, target_id: int) -> float:
        """Multiplicative path-RTT drift for one target in one
        experiment.

        Combines a per-experiment epoch bias (path changes between the
        singleton RTT campaign and a later deployment shift whole
        configurations, not just single targets) with per-target
        noise; bounded away from zero to stay physical.
        """
        if self.rtt_drift_sigma == 0.0 and self.rtt_bias_sigma == 0.0:
            return 1.0
        bias_rng = derive_rng(self.seed, "rtt-bias", experiment_id)
        rng = derive_rng(self.seed, "rtt-drift", experiment_id, target_id)
        factor = (1.0 + bias_rng.gauss(0.0, self.rtt_bias_sigma)) * (
            1.0 + rng.gauss(0.0, self.rtt_drift_sigma)
        )
        return max(0.7, factor)

    def _injections(self, config: AnycastConfig) -> List[SiteInjection]:
        spacing = (
            self.testbed.params.announcement_spacing_ms
            if config.spacing_ms is None
            else config.spacing_ms
        )
        injections: List[SiteInjection] = []
        for idx, site_id in enumerate(config.site_order):
            site = self.testbed.site(site_id)
            injections.append(
                SiteInjection(
                    host_asn=site.provider_asn,
                    site_id=site_id,
                    pop_id=site.attach_pop,
                    link_rtt_ms=site.access_rtt_ms,
                    rel_from_host=Relationship.CUSTOMER,
                    announce_time_ms=idx * spacing,
                    prepend=config.prepend_of(site_id),
                )
            )
        peer_start = len(config.site_order) * spacing
        for jdx, peer_id in enumerate(config.peer_ids):
            link = self.testbed.peer_link(peer_id)
            if link.peer_asn not in self.testbed.internet.graph:
                raise ConfigurationError(
                    f"peer link {peer_id} references unknown AS {link.peer_asn}"
                )
            injections.append(
                SiteInjection(
                    host_asn=link.peer_asn,
                    site_id=link.site_id,
                    pop_id=None,
                    link_rtt_ms=link.link_rtt_ms,
                    rel_from_host=Relationship.PEER,
                    announce_time_ms=peer_start + jdx * spacing,
                )
            )
        return injections

    # -- bulk measurements ------------------------------------------------------

    def measure_rtt_matrix(
        self,
        site_ids: Optional[Iterable[int]] = None,
        executor: Optional[CampaignExecutor] = None,
    ) -> RttMatrix:
        """Run one singleton experiment per site and estimate the RTT
        from that site to every target (paper S3.4: ``O(|S|)``
        singleton experiments).

        The singletons are independent, so ``executor`` may run them
        concurrently; ids are reserved in site order, keeping the
        result identical to the serial sweep.

        A singleton whose experiment exhausts its retries degrades
        gracefully: that site's row is recorded as all-None (no usable
        RTT samples) and the failure lands in :attr:`failures`.
        """
        # Imported here: repro.core.experiments imports this module, so
        # a module-level import would be a cycle.
        from repro.core.experiments import ExperimentTask

        site_ids = self.testbed.site_ids() if site_ids is None else list(site_ids)
        executor = executor if executor is not None else SerialExecutor()
        ids = self.reserve_experiment_ids(len(site_ids))
        with self.metrics.phase("rtt-matrix"), self.tracer.span(
            "rtt-matrix", sites=len(site_ids)
        ) as span:
            tasks = [
                ExperimentTask(
                    kind="rtt-row",
                    experiment_ids=(experiment_id,),
                    subject=f"site {site_id}",
                    site_id=site_id,
                    parent_span_id=span.span_id,
                )
                for site_id, experiment_id in zip(site_ids, ids)
            ]
            rows = executor.run_experiments(self, tasks)
        matrix = RttMatrix()
        for site_id, row in zip(site_ids, rows):
            if isinstance(row, FailedExperiment):
                self.record_failure(row)
                row = [(target.target_id, None) for target in self.targets]
            for target_id, rtt in row:
                matrix.set(site_id, target_id, rtt)
        return matrix
