"""The measurement orchestrator: deploys configurations and measures.

This is the simulated counterpart of the paper's GoBGP box (S3.1): it
turns an :class:`~repro.core.config.AnycastConfig` into BGP injections,
runs them to convergence, and offers catchment and RTT measurements
over the resulting data plane.  Every deployment is one "BGP
experiment" — the unit the paper's measurement budget counts (S4.5) —
and the orchestrator keeps a running tally.
"""

import threading
from functools import partial
from typing import Dict, Iterable, List, Optional, Tuple

from repro.util.rng import derive_rng, stable_hash

from repro.bgp.dataplane import DataPlane, ForwardingOutcome
from repro.bgp.engine import BGPEngine, ConvergedState, SiteInjection
from repro.core.config import AnycastConfig
from repro.measurement.icmp import IcmpProber
from repro.measurement.rtt import RttMatrix, estimate_rtt
from repro.measurement.targets import PingTarget, TargetSet
from repro.measurement.tunnels import TunnelManager
from repro.measurement.verfploeter import CatchmentMap, measure_catchments
from repro.runtime.cache import ConvergenceCache
from repro.runtime.executor import CampaignExecutor, SerialExecutor
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.settings import CampaignSettings, resolve_settings
from repro.topology.astopo import Relationship
from repro.topology.testbed import Testbed
from repro.util.errors import ConfigurationError, MeasurementError
from repro.util.stats import mean


class Deployment:
    """One deployed configuration: converged control plane + data plane."""

    def __init__(
        self,
        orchestrator: "Orchestrator",
        config: AnycastConfig,
        converged: ConvergedState,
        experiment_id: int,
    ):
        self.orchestrator = orchestrator
        self.config = config
        self.converged = converged
        self.experiment_id = experiment_id
        self.dataplane = DataPlane(
            orchestrator.testbed.internet, converged, flow_nonce=experiment_id
        )
        self._forwarding_cache: Dict[int, Optional[ForwardingOutcome]] = {}

    # -- data plane ---------------------------------------------------------

    def forwarding(self, target: PingTarget) -> Optional[ForwardingOutcome]:
        """Where this target's anycast traffic lands (cached)."""
        cached = self._forwarding_cache.get(target.target_id, _MISSING)
        if cached is not _MISSING:
            return cached
        outcome = self.dataplane.forward(target.asn, target.target_id)
        self._forwarding_cache[target.target_id] = outcome
        return outcome

    def true_rtt(self, target: PingTarget) -> Optional[float]:
        """Ground-truth RTT between the target and its catchment site.

        Includes the orchestrator's per-experiment path-RTT drift:
        real paths change slightly between the time a site's unicast
        RTT was measured and the time a configuration is deployed,
        which is the noise floor behind Figure 5b/5c.
        """
        outcome = self.forwarding(target)
        if outcome is None:
            return None
        drift = self.orchestrator.rtt_drift_factor(self.experiment_id, target.target_id)
        return outcome.rtt_ms * drift + target.last_mile_rtt_ms

    # -- measurements ---------------------------------------------------------

    def measure_catchments(self, targets: Optional[Iterable[PingTarget]] = None) -> CatchmentMap:
        """Verfploeter-style catchment map of this deployment."""
        targets = self.orchestrator.targets if targets is None else targets
        return measure_catchments(self, targets, self.orchestrator.prober)

    def measure_rtt(self, target: PingTarget) -> Optional[float]:
        """Median-of-seven RTT estimate to the target's catchment site."""
        outcome = self.forwarding(target)
        if outcome is None:
            return None
        return estimate_rtt(
            self.orchestrator.prober,
            self.orchestrator.tunnels,
            target,
            outcome.site_id,
            self.true_rtt(target),
            self.experiment_id,
        )

    def measure_mean_rtt(self, targets: Optional[Iterable[PingTarget]] = None) -> float:
        """Mean measured RTT over all reachable targets — the paper's
        per-configuration performance figure (S5.2/S5.3)."""
        targets = self.orchestrator.targets if targets is None else targets
        rtts = [r for r in (self.measure_rtt(t) for t in targets) if r is not None]
        if not rtts:
            raise MeasurementError(
                f"experiment {self.experiment_id}: no target reached any site"
            )
        return mean(rtts)


_MISSING = object()


class Orchestrator:
    """Deploys anycast configurations on the simulated Internet.

    The noise knobs live in a :class:`CampaignSettings` value (the old
    per-knob constructor kwargs still work but are deprecated):

    - ``session_churn_prob``: per-experiment probability that an AS's
      interior-routing state changed since the topology was built;
      churned ASes get fresh session costs for that run.  This is the
      measurement-to-deployment drift that keeps real catchment
      prediction below 100% accurate.
    - ``rtt_drift_sigma``: relative standard deviation of
      per-experiment path-RTT drift.

    Campaign drivers reserve experiment ids *before* dispatching work
    (:meth:`reserve_experiment_ids`), which is what makes pooled
    execution bit-identical to the serial path: every seeded noise
    stream is keyed by experiment id, never by completion order.
    """

    def __init__(
        self,
        testbed: Testbed,
        targets: TargetSet,
        seed=0,
        settings: Optional[CampaignSettings] = None,
        *,
        metrics: Optional[MetricsRegistry] = None,
        session_churn_prob: Optional[float] = None,
        rtt_drift_sigma: Optional[float] = None,
        rtt_bias_sigma: Optional[float] = None,
        bgp_delay_jitter_ms: Optional[float] = None,
    ):
        self.settings = resolve_settings(
            settings,
            "Orchestrator",
            session_churn_prob=session_churn_prob,
            rtt_drift_sigma=rtt_drift_sigma,
            rtt_bias_sigma=rtt_bias_sigma,
            bgp_delay_jitter_ms=bgp_delay_jitter_ms,
        )
        self.testbed = testbed
        self.targets = targets
        self.seed = seed
        self.session_churn_prob = self.settings.session_churn_prob
        self.rtt_drift_sigma = self.settings.rtt_drift_sigma
        self.rtt_bias_sigma = self.settings.rtt_bias_sigma
        self.bgp_delay_jitter_ms = self.settings.bgp_delay_jitter_ms
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.convergence_cache = (
            ConvergenceCache(self.settings.convergence_cache_size, metrics=self.metrics)
            if self.settings.convergence_cache
            else None
        )
        self.engine = BGPEngine(
            testbed.internet, cache=self.convergence_cache, metrics=self.metrics
        )
        self.prober = IcmpProber(seed=seed)
        self.tunnels = TunnelManager(testbed, seed=seed)
        self._experiment_count = 0
        self._id_lock = threading.Lock()

    @property
    def experiment_count(self) -> int:
        """BGP experiments consumed (or reserved) so far — the unit
        the paper's measurement budget counts (S4.5)."""
        return self._experiment_count

    # -- deployment -----------------------------------------------------------

    def reserve_experiment_ids(self, count: int) -> range:
        """Claim the next ``count`` experiment ids, in serial order.

        Campaign executors reserve ids for a whole batch up front and
        then deploy concurrently; because ids — not completion times —
        seed the churn/jitter/drift streams, the results match a
        serial run experiment for experiment.
        """
        if count < 0:
            raise ConfigurationError("cannot reserve a negative id count")
        with self._id_lock:
            start = self._experiment_count + 1
            self._experiment_count += count
        return range(start, start + count)

    def deploy(
        self, config: AnycastConfig, experiment_id: Optional[int] = None
    ) -> Deployment:
        """Announce ``config`` and converge; counts as one BGP experiment.

        ``experiment_id`` accepts an id obtained from
        :meth:`reserve_experiment_ids`; by default the next id is
        claimed on the spot (the serial path).
        """
        if experiment_id is None:
            experiment_id = self.reserve_experiment_ids(1)[0]
        with self.metrics.timer("deploy").time():
            converged = self.engine.run(
                self._injections(config),
                igp_overlay=self._igp_overlay(experiment_id),
                delay_jitter_ms=self.bgp_delay_jitter_ms,
                delay_nonce=experiment_id,
            )
        self.metrics.counter("experiments").increment()
        return Deployment(self, config, converged, experiment_id)

    # -- drift models -----------------------------------------------------------

    def _igp_overlay(self, experiment_id: int) -> Dict[Tuple[int, int], int]:
        """Interior-cost overrides for one experiment's churned ASes."""
        if self.session_churn_prob == 0.0:
            return {}
        rng = derive_rng(self.seed, "igp-churn", experiment_id)
        graph = self.testbed.internet.graph
        tie_fraction = self.testbed.internet.params.igp_tie_fraction
        overlay: Dict[Tuple[int, int], int] = {}
        for asn in graph.asns():
            if rng.random() >= self.session_churn_prob:
                continue
            tie_prone = rng.random() < tie_fraction
            for neighbor in graph.neighbors(asn):
                if tie_prone:
                    overlay[(asn, neighbor)] = 0
                else:
                    overlay[(asn, neighbor)] = 1 + stable_hash(
                        self.seed, "igp-churn", experiment_id, asn, neighbor
                    ) % 1_000_000
        return overlay

    def rtt_drift_factor(self, experiment_id: int, target_id: int) -> float:
        """Multiplicative path-RTT drift for one target in one
        experiment.

        Combines a per-experiment epoch bias (path changes between the
        singleton RTT campaign and a later deployment shift whole
        configurations, not just single targets) with per-target
        noise; bounded away from zero to stay physical.
        """
        if self.rtt_drift_sigma == 0.0 and self.rtt_bias_sigma == 0.0:
            return 1.0
        bias_rng = derive_rng(self.seed, "rtt-bias", experiment_id)
        rng = derive_rng(self.seed, "rtt-drift", experiment_id, target_id)
        factor = (1.0 + bias_rng.gauss(0.0, self.rtt_bias_sigma)) * (
            1.0 + rng.gauss(0.0, self.rtt_drift_sigma)
        )
        return max(0.7, factor)

    def _injections(self, config: AnycastConfig) -> List[SiteInjection]:
        spacing = (
            self.testbed.params.announcement_spacing_ms
            if config.spacing_ms is None
            else config.spacing_ms
        )
        injections: List[SiteInjection] = []
        for idx, site_id in enumerate(config.site_order):
            site = self.testbed.site(site_id)
            injections.append(
                SiteInjection(
                    host_asn=site.provider_asn,
                    site_id=site_id,
                    pop_id=site.attach_pop,
                    link_rtt_ms=site.access_rtt_ms,
                    rel_from_host=Relationship.CUSTOMER,
                    announce_time_ms=idx * spacing,
                    prepend=config.prepend_of(site_id),
                )
            )
        peer_start = len(config.site_order) * spacing
        for jdx, peer_id in enumerate(config.peer_ids):
            link = self.testbed.peer_link(peer_id)
            if link.peer_asn not in self.testbed.internet.graph:
                raise ConfigurationError(
                    f"peer link {peer_id} references unknown AS {link.peer_asn}"
                )
            injections.append(
                SiteInjection(
                    host_asn=link.peer_asn,
                    site_id=link.site_id,
                    pop_id=None,
                    link_rtt_ms=link.link_rtt_ms,
                    rel_from_host=Relationship.PEER,
                    announce_time_ms=peer_start + jdx * spacing,
                )
            )
        return injections

    # -- bulk measurements ------------------------------------------------------

    def measure_rtt_matrix(
        self,
        site_ids: Optional[Iterable[int]] = None,
        executor: Optional[CampaignExecutor] = None,
    ) -> RttMatrix:
        """Run one singleton experiment per site and estimate the RTT
        from that site to every target (paper S3.4: ``O(|S|)``
        singleton experiments).

        The singletons are independent, so ``executor`` may run them
        concurrently; ids are reserved in site order, keeping the
        result identical to the serial sweep.
        """
        site_ids = self.testbed.site_ids() if site_ids is None else list(site_ids)
        executor = executor if executor is not None else SerialExecutor()

        def singleton_row(site_id: int, experiment_id: int) -> List[Tuple[int, Optional[float]]]:
            deployment = self.deploy(
                AnycastConfig(site_order=(site_id,)), experiment_id=experiment_id
            )
            return [
                (target.target_id, deployment.measure_rtt(target))
                for target in self.targets
            ]

        ids = self.reserve_experiment_ids(len(site_ids))
        with self.metrics.phase("rtt-matrix"):
            rows = executor.run([
                partial(singleton_row, site_id, experiment_id)
                for site_id, experiment_id in zip(site_ids, ids)
            ])
        matrix = RttMatrix()
        for site_id, row in zip(site_ids, rows):
            for target_id, rtt in row:
                matrix.set(site_id, target_id, rtt)
        return matrix
