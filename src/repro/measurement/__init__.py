"""Verfploeter-style measurement plane.

The paper measures catchments and RTTs by sending ICMP echo requests
whose *source* address is the anycast prefix: the reply routes back to
the target's catchment site and arrives at the orchestrator through
that site's GRE tunnel, identifying the catchment (S3).  This package
simulates that protocol against the BGP simulator's data plane:

- :mod:`repro.measurement.targets` — ping-target selection (S3.2);
- :mod:`repro.measurement.icmp` — probe-level loss and jitter;
- :mod:`repro.measurement.tunnels` — GRE tunnel RTTs and their
  periodic estimation;
- :mod:`repro.measurement.verfploeter` — catchment mapping;
- :mod:`repro.measurement.rtt` — site-to-target RTT estimation
  (median of seven probes minus the tunnel RTT);
- :mod:`repro.measurement.orchestrator` — deploys configurations on
  the simulated Internet and runs the measurements.
"""

from repro.measurement.icmp import IcmpProber, ProbeResult
from repro.measurement.orchestrator import Deployment, Orchestrator
from repro.measurement.rtt import RttMatrix, estimate_rtt
from repro.measurement.targets import PingTarget, TargetSet, select_targets
from repro.measurement.tunnels import GreTunnel, TunnelManager
from repro.measurement.verfploeter import CatchmentMap, measure_catchments

__all__ = [
    "CatchmentMap",
    "Deployment",
    "GreTunnel",
    "IcmpProber",
    "Orchestrator",
    "PingTarget",
    "ProbeResult",
    "RttMatrix",
    "TargetSet",
    "TunnelManager",
    "estimate_rtt",
    "measure_catchments",
    "select_targets",
]
