"""Command-line interface for the AnyOpt pipeline.

Chains the paper's workflow across invocations via JSON artifacts::

    anyopt build-testbed --seed 7 --out testbed.json
    anyopt discover --testbed testbed.json --out model.json
    anyopt audit --testbed testbed.json --model model.json --repair --out model.json
    anyopt optimize --testbed testbed.json --model model.json --size 12
    anyopt evaluate --testbed testbed.json --model model.json --sites 1,4,6
    anyopt catchment --testbed testbed.json --sites 1,4,6 --chart
    anyopt peers --testbed testbed.json --sites 1,4,6 --max-peers 20
    anyopt plan --sites 500 --providers 20

Also runnable as ``python -m repro ...``.
"""

import argparse
import contextlib
import json
import os
import sys
from typing import List, Optional

from repro.core.anyopt import AnyOpt
from repro.core.config import AnycastConfig
from repro.core.planner import SiteLevelStrategy, plan_measurements
from repro.core.twolevel import SiteLevelMode
from repro.io import load_model, load_testbed, save_model, save_testbed
from repro.measurement import select_targets
from repro.obs.export import load_trace, write_prometheus, write_trace_jsonl
from repro.obs.heartbeat import HeartbeatWriter, follow_heartbeats, load_heartbeats
from repro.obs.inspect import summarize_trace
from repro.obs.log import LEVELS, configure_logging
from repro.report import (
    render_audit_report,
    render_catchment_bars,
    render_cdf,
    render_heartbeat,
    render_heartbeat_history,
    render_metrics,
    render_table,
)
from repro.runtime.settings import CampaignSettings
from repro.splpo import available_strategies
from repro.topology import TestbedParams, TopologyParams, build_paper_testbed
from repro.util.errors import ReproError


def _parse_id_list(raw: str) -> tuple:
    try:
        return tuple(int(x) for x in raw.split(",") if x.strip() != "")
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a comma-separated id list, got {raw!r}"
        ) from None


def _positive_int(raw: str) -> int:
    try:
        value = int(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {raw!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {value}")
    return value


def _port(raw: str) -> int:
    try:
        value = int(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a port number, got {raw!r}") from None
    if not 0 <= value <= 65535:
        raise argparse.ArgumentTypeError(f"expected a port in [0, 65535], got {value}")
    return value


def _positive_float(raw: str) -> float:
    try:
        value = float(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {raw!r}") from None
    if value <= 0:
        raise argparse.ArgumentTypeError(f"expected a positive number, got {value}")
    return value


def _probability(raw: str) -> float:
    try:
        value = float(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {raw!r}") from None
    if not 0.0 <= value <= 1.0:
        raise argparse.ArgumentTypeError(f"expected a probability in [0, 1], got {value}")
    return value


def _nonneg_float(raw: str) -> float:
    try:
        value = float(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {raw!r}") from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"expected a non-negative number, got {value}")
    return value


def _timeout_or_none(raw: str) -> Optional[float]:
    """A positive timeout in seconds, or 0/'none' to disable it."""
    if raw.strip().lower() in ("none", "off"):
        return None
    try:
        value = float(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected seconds or 'none', got {raw!r}") from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"expected a non-negative timeout, got {value}")
    return value if value > 0 else None


def _settings_from_args(args) -> Optional[CampaignSettings]:
    """Campaign settings from the fault/retry CLI flags; None when no
    flag was given, so commands without the flags keep the defaults."""
    overrides = {}
    for flag, field in (
        ("fault_announcement", "fault_announcement_prob"),
        ("fault_convergence_timeout", "fault_convergence_timeout_prob"),
        ("fault_probe_blackout", "fault_probe_blackout_prob"),
        ("fault_session_reset", "fault_session_reset_prob"),
        ("max_attempts", "retry_max_attempts"),
        ("executor", "executor"),
        ("chunk_size", "process_chunk_size"),
        ("cache_dir", "convergence_cache_path"),
        ("engine_mode", "engine_mode"),
    ):
        value = getattr(args, flag, None)
        if value is not None:
            overrides[field] = value
    return CampaignSettings(**overrides) if overrides else None


def _make_anyopt(args) -> AnyOpt:
    testbed = load_testbed(args.testbed)
    targets = select_targets(testbed.internet, seed=args.seed)
    anyopt = AnyOpt(
        testbed, targets=targets, seed=args.seed, settings=_settings_from_args(args)
    )
    # Remembered so ``main`` can render ``--stats`` after the command.
    args._anyopt = anyopt
    return anyopt


def _campaign_heartbeat(args, anyopt, campaign: str, total_experiments=None):
    """Heartbeat context for a campaign command.

    Returns a started-on-enter :class:`HeartbeatWriter` when the user
    asked for ``--heartbeat PATH``, else a null context yielding None.
    Heartbeat config is a CLI concern, deliberately *not* a
    :class:`CampaignSettings` field: settings equality gates
    checkpoint resume, and where progress gets reported must never
    break resume compatibility.
    """
    path = getattr(args, "heartbeat", None)
    if not path:
        return contextlib.nullcontext(None)
    return HeartbeatWriter(
        path,
        anyopt.metrics,
        interval_s=getattr(args, "heartbeat_interval", 5.0),
        campaign=campaign,
        total_experiments=total_experiments,
    )


# --- subcommands -----------------------------------------------------------


def cmd_build_testbed(args) -> int:
    params = TestbedParams(
        topology=TopologyParams(n_stub=args.stubs, n_tier2=args.tier2)
    )
    testbed = build_paper_testbed(params, seed=args.seed)
    save_testbed(testbed, args.out)
    graph = testbed.internet.graph
    print(
        f"built testbed: {len(testbed.site_ids())} sites, "
        f"{len(testbed.provider_asns())} providers, "
        f"{len(graph)} ASes, {len(testbed.peer_links)} peering links"
    )
    print(f"saved to {args.out}")
    return 0


def cmd_discover(args) -> int:
    anyopt = _make_anyopt(args)
    if args.site_level == "rtt":
        anyopt.site_level_mode = SiteLevelMode.RTT_HEURISTIC
    resume_from = None
    if args.checkpoint and os.path.exists(args.checkpoint):
        print(f"resuming from checkpoint {args.checkpoint}")
        resume_from = args.checkpoint
    plan = plan_measurements(
        n_sites=len(anyopt.testbed.site_ids()),
        n_providers=len(anyopt.testbed.provider_asns()),
        site_level=SiteLevelStrategy(args.site_level),
    )
    with _campaign_heartbeat(
        args, anyopt, "discover", total_experiments=plan.total_experiments
    ) as heartbeat:
        if heartbeat is not None:
            heartbeat.set_phase("discover")
        model = anyopt.discover(
            parallelism=args.parallelism,
            checkpoint_path=args.checkpoint,
            resume_from=resume_from,
        )
        if args.audit or args.repair:
            if heartbeat is not None:
                heartbeat.set_phase("audit")
            report = anyopt.audit(model)
            print(render_audit_report(report))
            if args.repair and not report.clean:
                if heartbeat is not None:
                    heartbeat.set_phase("repair")
                repaired = anyopt.repair(
                    model, report=report, parallelism=args.parallelism
                )
                print(
                    f"repair: {repaired.rounds} round(s), "
                    f"{repaired.experiments_used} experiment(s) re-run; "
                    f"{repaired.final_report.predictable_clients}/{len(anyopt.targets)} "
                    f"client(s) now predictable"
                )
    save_model(model, args.out)
    if model.failures:
        # Counted from the model, not the metrics counters, so a
        # resumed run reports the campaign's degradation rather than
        # only this process's share of it.
        matrices = [
            model.twolevel.provider_matrix,
            *model.twolevel.site_matrices.values(),
        ]
        undecided = sum(
            1
            for matrix in matrices
            for client in matrix.clients()
            for pair in matrix.pairs()
            if (obs := matrix.observation(client, *sorted(pair))) is not None
            and obs.undecided
        )
        print(
            f"degraded campaign: gave up on {len(model.failures)} experiment(s), "
            f"{undecided} preference cells left undecided"
        )
    order = tuple(anyopt.testbed.site_ids())
    with_order = sum(
        1
        for t in anyopt.targets
        if model.total_order(t.target_id, order).has_total_order
    )
    print(f"measurement campaign: {model.experiments_used} BGP experiments")
    print(
        f"clients with a total preference order: "
        f"{with_order}/{len(anyopt.targets)} "
        f"({100 * with_order / len(anyopt.targets):.1f}%)"
    )
    print(f"saved model to {args.out}")
    if args.snapshot_out:
        _compile_snapshot_file(model, args.snapshot_out)
    return 0


def cmd_audit(args) -> int:
    from repro.audit import AuditViolation

    anyopt = _make_anyopt(args)
    model = load_model(args.model, anyopt.testbed)
    violation = None
    with _campaign_heartbeat(args, anyopt, "audit") as heartbeat:
        if heartbeat is not None:
            heartbeat.set_phase("audit")
        try:
            report = anyopt.audit(
                model,
                ground_truth_k=args.ground_truth,
                min_accuracy=args.min_accuracy,
            )
        except AuditViolation as exc:
            if exc.report is None:
                raise
            violation = exc
            report = exc.report
        print(render_audit_report(report))
        repair_report = None
        if args.repair and not report.clean:
            if heartbeat is not None:
                heartbeat.set_phase("repair")
            repair_report = anyopt.repair(
                model,
                report=report,
                max_rounds=args.max_rounds,
                budget=args.repair_budget,
                parallelism=args.parallelism,
                checkpoint_path=args.checkpoint,
                resume_from=args.checkpoint
                if args.checkpoint and os.path.exists(args.checkpoint)
                else None,
            )
            report = repair_report.final_report
            print(
                f"\nrepair: {repair_report.rounds} round(s), "
                f"{repair_report.experiments_used} experiment(s) re-run"
                + (" (budget exhausted)" if repair_report.budget_exhausted else "")
            )
            print()
            print(render_audit_report(report))
            if args.out:
                save_model(model, args.out)
                print(f"saved repaired model to {args.out}")
    if args.snapshot_out:
        _compile_snapshot_file(model, args.snapshot_out)
    if args.report:
        doc = report.to_dict()
        if repair_report is not None:
            doc["repair"] = repair_report.to_dict()
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"audit report written to {args.report}")
    if violation is not None:
        print(f"error: {violation}", file=sys.stderr)
        if violation.explanation:
            print(violation.explanation, file=sys.stderr)
        return 3
    return 0


def cmd_optimize(args) -> int:
    anyopt = _make_anyopt(args)
    model = load_model(args.model, anyopt.testbed)
    sizes = [args.size] if args.size else None
    report = anyopt.optimize(
        model, strategy=args.strategy, sizes=sizes,
        max_evaluations=args.max_evaluations,
    )
    print(f"best configuration ({report.solver}, {report.evaluations} evaluations):")
    print(f"  sites (announce order): {','.join(map(str, report.best_config.site_order))}")
    print(f"  predicted mean RTT: {report.predicted_mean_rtt:.1f} ms")
    print(
        f"  clients with total order under chosen announce order: "
        f"{report.consistent_clients}/{report.total_clients}"
    )
    return 0


def cmd_evaluate(args) -> int:
    anyopt = _make_anyopt(args)
    model = load_model(args.model, anyopt.testbed)
    config = AnycastConfig(site_order=args.sites, peer_ids=args.peers or ())
    evaluation = anyopt.evaluate(model, config)
    print(render_table(
        ["metric", "value"],
        [
            ["catchment accuracy", f"{100 * evaluation.accuracy:.1f}%"],
            ["prediction coverage", f"{100 * evaluation.coverage:.1f}%"],
            ["predicted mean RTT", f"{evaluation.predicted_mean_rtt:.1f} ms"],
            ["measured mean RTT", f"{evaluation.measured_mean_rtt:.1f} ms"],
            ["abs error", f"{evaluation.abs_rtt_error_ms:.1f} ms"],
            ["relative error", f"{100 * evaluation.rel_rtt_error:.1f}%"],
        ],
    ))
    return 0


def cmd_catchment(args) -> int:
    anyopt = _make_anyopt(args)
    config = AnycastConfig(site_order=args.sites, peer_ids=args.peers or ())
    deployment = anyopt.deploy(config)
    cmap = deployment.measure_catchments()
    print("catchment split:")
    print(render_catchment_bars(cmap.catchment_sizes(), total=len(anyopt.targets)))
    unmapped = len(anyopt.targets) - cmap.mapped_count()
    if unmapped:
        print(f"unmapped targets: {unmapped}")
    if args.chart:
        rtts = [
            r
            for r in (deployment.measure_rtt(t) for t in anyopt.targets)
            if r is not None
        ]
        print("\nRTT CDF:")
        print(render_cdf(rtts, label="rtt(ms)"))
    return 0


def cmd_peers(args) -> int:
    anyopt = _make_anyopt(args)
    base = AnycastConfig(site_order=args.sites)
    peer_ids = anyopt.testbed.peer_ids()
    if args.max_peers:
        peer_ids = peer_ids[: args.max_peers]
    report = anyopt.incorporate_peers(
        base, peer_ids=peer_ids, parallelism=args.parallelism
    )
    beneficial = report.beneficial_peers()
    print(
        f"probed {len(report.probes)} peers: "
        f"{len(report.reachable_probes())} reachable, "
        f"{len(beneficial)} beneficial"
    )
    print(f"selected peers: {','.join(map(str, report.selected_peers)) or '(none)'}")
    measured = (
        report.final_mean_rtt_ms
        if report.final_mean_rtt_ms is not None
        else "(measurement failed)"
    )
    print(render_table(
        ["metric", "ms"],
        [
            ["baseline mean RTT", report.base_mean_rtt_ms],
            ["estimated with peers", report.estimated_final_mean_rtt_ms],
            ["measured with peers", measured],
        ],
    ))
    if report.failures:
        print(f"degraded run: gave up on {len(report.failures)} experiment(s)")
    return 0


def cmd_stability(args) -> int:
    from repro.core.stability import run_stability_study

    anyopt = _make_anyopt(args)
    config = AnycastConfig(site_order=args.sites)
    report = run_stability_study(anyopt.orchestrator, config, epochs=args.epochs)
    rows = []
    for snap in report.snapshots:
        unchanged = (
            "(baseline)"
            if snap.unchanged_fraction is None
            else f"{100 * snap.unchanged_fraction:.1f}%"
        )
        rows.append([snap.epoch, unchanged, f"{snap.mean_rtt_ms:.1f}"])
    print(render_table(["epoch", "unchanged catchments", "mean RTT (ms)"], rows))
    verdict = (
        "re-measurement recommended"
        if report.remeasurement_recommended
        else "configuration still healthy"
    )
    print(f"verdict: {verdict}")
    return 0


def cmd_explain(args) -> int:
    from repro.bgp import explain_catchment

    anyopt = _make_anyopt(args)
    config = AnycastConfig(site_order=args.sites, peer_ids=args.peers or ())
    deployment = anyopt.deploy(config)
    print(
        explain_catchment(
            anyopt.testbed.internet,
            deployment.converged,
            args.client,
            flow_nonce=deployment.experiment_id,
        )
    )
    return 0


def cmd_diff(args) -> int:
    from repro.core.diffs import diff_deployments

    anyopt = _make_anyopt(args)
    before = anyopt.deploy(AnycastConfig(site_order=args.before))
    after = anyopt.deploy(AnycastConfig(site_order=args.after))
    diff = diff_deployments(before, after)
    print(
        f"moved {len(diff.moves)}/{diff.unchanged + len(diff.moves)} clients "
        f"({100 * diff.moved_fraction:.1f}%), {diff.unmapped} unmapped"
    )
    flows = sorted(diff.flows().items(), key=lambda kv: -kv[1])
    rows = [
        [src if src is not None else "-", dst if dst is not None else "-", count]
        for (src, dst), count in flows[:15]
    ]
    if rows:
        print(render_table(["from site", "to site", "clients"], rows))
        try:
            print(f"mean RTT change of movers: {diff.mean_rtt_delta_ms():+.1f} ms")
        except ReproError:
            pass
    return 0


def _compile_snapshot_file(model, path: str) -> None:
    from repro.serve import compile_snapshot, write_snapshot

    snapshot = compile_snapshot(model)
    write_snapshot(snapshot, path)
    print(f"published snapshot {snapshot.version} to {path}")


def cmd_snapshot(args) -> int:
    from repro.serve import load_snapshot, read_header

    if args.snapshot:
        if args.verify:
            load_snapshot(args.snapshot)  # full payload checksum
        doc = dict(read_header(args.snapshot))
        doc.pop("arrays", None)
        print(render_table(
            ["field", "value"],
            [[key, json.dumps(doc[key]) if isinstance(doc[key], dict) else str(doc[key])]
             for key in sorted(doc)],
        ))
        if args.verify:
            print("payload checksum: ok")
        return 0
    if not (args.testbed and args.model and args.out):
        raise ReproError(
            "snapshot needs either --snapshot PATH to inspect, or "
            "--testbed/--model/--out to compile one"
        )
    testbed = load_testbed(args.testbed)
    model = load_model(args.model, testbed)
    _compile_snapshot_file(model, args.out)
    return 0


def cmd_predict(args) -> int:
    from repro.report import render_prediction_batch
    from repro.serve import LookupEngine, load_snapshot

    engine = LookupEngine(load_snapshot(args.snapshot))
    config = AnycastConfig(site_order=args.sites)
    clients = list(args.clients) if args.clients else None
    batch = engine.predict(config, clients)
    print(render_prediction_batch(batch, limit=args.limit))
    return 0


def cmd_serve(args) -> int:
    import asyncio
    import signal

    from repro.serve import GuardConfig, ModelServer, WatchConfig

    snapshot_path = args.snapshot
    if snapshot_path is None:
        if not (args.testbed and args.model):
            raise ReproError(
                "serve needs --snapshot, or --testbed and --model to compile one"
            )
        testbed = load_testbed(args.testbed)
        model = load_model(args.model, testbed)
        snapshot_path = args.out or f"{args.model}.snap"
        _compile_snapshot_file(model, snapshot_path)

    from repro.serve.http import default_slo_specs

    guard = GuardConfig(
        header_timeout_s=args.header_timeout,
        body_timeout_s=args.body_timeout,
        handler_timeout_s=args.request_timeout,
        write_timeout_s=args.write_timeout,
        idle_timeout_s=args.idle_timeout,
        max_connections=args.max_connections,
        max_inflight=args.max_inflight,
        max_header_count=args.max_headers,
        retry_after_s=args.shed_retry_after,
    )
    watch = None
    if args.watch:
        watch = WatchConfig(
            poll_interval_s=args.watch_interval,
            debounce_s=args.watch_debounce,
            backoff_base_s=args.watch_backoff,
            max_backoff_s=args.watch_max_backoff,
        )
    server = ModelServer(
        snapshot_path,
        host=args.host,
        port=args.port,
        slo_specs=default_slo_specs(
            latency_threshold_ms=args.latency_slo_ms,
            max_snapshot_age_s=args.max_snapshot_age,
        ),
        guard=guard,
        watch=watch,
    )
    server.load()  # fail fast on a corrupt snapshot, before binding

    def _hot_reload():
        # Signal handlers run on the loop thread: schedule the
        # off-loop async reload instead of blocking the loop on I/O.
        async def _do():
            try:
                old, new = await server.reload_async()
                print(f"reloaded snapshot: {old} -> {new}")
            except ReproError as exc:
                print(
                    f"reload failed, old model keeps serving: {exc}",
                    file=sys.stderr,
                )

        asyncio.ensure_future(_do())

    async def _serve() -> None:
        await server.start()
        print(
            f"serving model {server.engine.version} on "
            f"http://{server.host}:{server.port} "
            "(POST /predict, GET /healthz /livez /metricsz /slozz /modelz, "
            "POST /reloadz)"
            + (" [watching snapshot for republish]" if watch else "")
        )
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, stop.set)
        # SIGHUP = hot reload, the audit/repair publish hand-off.
        loop.add_signal_handler(signal.SIGHUP, _hot_reload)
        serving = asyncio.ensure_future(server.serve_forever())
        await stop.wait()
        print("shutting down (draining in-flight requests)")
        serving.cancel()
        try:
            await serving
        except asyncio.CancelledError:
            pass
        await server.shutdown(grace_s=args.drain_grace)

    asyncio.run(_serve())
    if getattr(args, "trace", None):
        write_trace_jsonl(server.tracer.records(), args.trace)
        print(f"trace written to {args.trace}")
    if getattr(args, "metrics_out", None):
        write_prometheus(server.metrics.snapshot(), args.metrics_out)
        print(f"metrics written to {args.metrics_out}")
    return 0


def cmd_chaos(args) -> int:
    from repro.report import render_chaos_report
    from repro.serve import ChaosConfig, run_chaos

    config = ChaosConfig(
        seed=args.seed,
        requests=args.requests,
        concurrency=args.concurrency,
        publishes=args.publishes,
        request_fault_prob=args.fault_prob,
        publish_corrupt_prob=args.corrupt_prob,
        watch_interval_s=args.watch_interval,
        watch_debounce_s=args.watch_debounce,
        header_timeout_s=args.header_timeout,
        write_timeout_s=args.write_timeout,
        max_inflight=args.max_inflight,
        client_timeout_s=args.client_timeout,
    )
    report = run_chaos(
        args.snapshot, config, host=args.host, port=args.port
    )
    print(render_chaos_report(report))
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
        print(f"chaos report written to {args.report}")
    if args.metricsz_out and getattr(report, "metricsz_text", ""):
        with open(args.metricsz_out, "w", encoding="utf-8") as fh:
            fh.write(report.metricsz_text)
        print(f"scraped /metricsz written to {args.metricsz_out}")
    return 0 if report.passed else 4


def cmd_inspect_trace(args) -> int:
    records = load_trace(args.trace_file)
    print(summarize_trace(records, top=args.top))
    return 0


def cmd_watch(args) -> int:
    if args.no_follow:
        records = load_heartbeats(args.heartbeat_file)
        if not records:
            print("no heartbeat records yet")
            return 1
        print(render_heartbeat_history(records))
        return 0
    try:
        for record in follow_heartbeats(
            args.heartbeat_file, poll_s=args.poll, max_polls=args.max_polls
        ):
            print(render_heartbeat(record), flush=True)
    except KeyboardInterrupt:
        pass
    return 0


def cmd_plan(args) -> int:
    plan = plan_measurements(
        n_sites=args.sites,
        n_providers=args.providers,
        site_level=SiteLevelStrategy(args.site_level),
        parallel_prefixes=args.prefixes,
        spacing_hours=args.spacing_hours,
    )
    print(render_table(
        ["experiments", "count", "hours", "days"],
        [
            ["singleton", plan.singleton_experiments,
             plan.singleton_hours, plan.singleton_hours / 24],
            ["provider pairwise", plan.provider_pairwise_experiments,
             plan.hours_for(plan.provider_pairwise_experiments),
             plan.hours_for(plan.provider_pairwise_experiments) / 24],
            ["site pairwise", plan.site_pairwise_experiments,
             plan.hours_for(plan.site_pairwise_experiments),
             plan.hours_for(plan.site_pairwise_experiments) / 24],
            ["total", plan.total_experiments,
             plan.hours_for(plan.total_experiments),
             plan.total_days],
        ],
    ))
    print(f"naive alternative: 2^{args.sites} trial deployments")
    return 0


# --- parser -----------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="anyopt",
        description="AnyOpt: predict and optimize IP anycast performance "
        "(SIGCOMM 2021 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Shared by every subcommand that runs a measurement campaign.
    stats = argparse.ArgumentParser(add_help=False)
    stats.add_argument(
        "--stats",
        action="store_true",
        help="print campaign metrics (experiments, timers, cache hits) at the end",
    )
    stats.add_argument(
        "--profile",
        default=None,
        metavar="PATH",
        help="profile the command with cProfile, write pstats data to PATH, "
        "and print the top functions by cumulative time",
    )
    stats.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persist converged BGP states under DIR so repeated invocations "
        "(and process-pool workers) reuse each other's convergence work",
    )
    stats.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="export the campaign's span tree as JSONL to PATH "
        "(inspect it with 'anyopt inspect-trace PATH')",
    )
    stats.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="export campaign metrics as Prometheus text exposition to PATH",
    )
    stats.add_argument(
        "--heartbeat",
        default=None,
        metavar="PATH",
        help="append periodic campaign-progress records (experiments done, "
        "cache hit rate, ETA) as JSONL to PATH; tail it live with "
        "'anyopt watch PATH'",
    )
    stats.add_argument(
        "--heartbeat-interval",
        type=_positive_float,
        default=5.0,
        metavar="SECONDS",
        help="seconds between heartbeat records (default: 5)",
    )
    stats.add_argument(
        "--log-level",
        choices=list(LEVELS),
        default=None,
        help="structured-log verbosity for the repro.* loggers (default: warning)",
    )
    stats.add_argument(
        "--log-json",
        action="store_true",
        help="emit structured logs as JSON lines instead of key=value text",
    )

    # Fault-injection and retry knobs, shared by campaign subcommands.
    faults = argparse.ArgumentParser(add_help=False)
    faults.add_argument(
        "--fault-announcement",
        type=_probability,
        default=None,
        metavar="PROB",
        help="per-attempt probability of a transient announcement failure",
    )
    faults.add_argument(
        "--fault-convergence-timeout",
        type=_probability,
        default=None,
        metavar="PROB",
        help="per-attempt probability of a convergence timeout",
    )
    faults.add_argument(
        "--fault-probe-blackout",
        type=_probability,
        default=None,
        metavar="PROB",
        help="per-attempt probability of losing an experiment's probes",
    )
    faults.add_argument(
        "--fault-session-reset",
        type=_probability,
        default=None,
        metavar="PROB",
        help="per-attempt probability of an orchestrator session reset",
    )
    faults.add_argument(
        "--max-attempts",
        type=_positive_int,
        default=None,
        help="attempts per experiment before it is recorded as failed",
    )

    # Executor knobs, shared by subcommands that can run experiments in
    # a worker pool (discover, audit --repair, peers).
    runtime = argparse.ArgumentParser(add_help=False)
    runtime.add_argument(
        "--executor",
        choices=["thread", "process"],
        default=None,
        help="worker pool kind for --parallelism > 1: shared-memory threads "
        "(default) or forked processes (results are identical either way)",
    )
    runtime.add_argument(
        "--chunk-size",
        type=_positive_int,
        default=None,
        metavar="N",
        help="experiments per dispatch to a process-pool worker (default: "
        "auto-sized from the task count and pool width; ignored by the "
        "thread executor)",
    )
    runtime.add_argument(
        "--engine-mode",
        choices=["delta", "full"],
        default=None,
        dest="engine_mode",
        help="convergence engine: 'delta' replays only the announce/withdraw "
        "wavefront over a per-topology base state (default), 'full' replays "
        "every event from scratch (reference; bit-identical results)",
    )

    p = sub.add_parser("build-testbed", help="generate and save a testbed")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--stubs", type=int, default=600)
    p.add_argument("--tier2", type=int, default=48)
    p.add_argument("--out", required=True)
    p.set_defaults(func=cmd_build_testbed)

    p = sub.add_parser(
        "discover",
        parents=[stats, faults, runtime],
        help="run the measurement campaign",
    )
    p.add_argument("--testbed", required=True)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--site-level", choices=["pairwise", "rtt"], default="pairwise")
    p.add_argument(
        "--parallelism",
        type=_positive_int,
        default=None,
        help="campaign workers (results are identical to serial)",
    )
    p.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="write a checkpoint after each phase; if PATH exists, resume from it",
    )
    p.add_argument(
        "--audit",
        action="store_true",
        help="audit the discovered model for integrity findings before saving",
    )
    p.add_argument(
        "--repair",
        action="store_true",
        help="after auditing, re-run the implicated experiments and save the "
        "repaired model (implies --audit)",
    )
    p.add_argument("--out", required=True)
    p.add_argument(
        "--snapshot-out",
        default=None,
        metavar="PATH",
        help="also compile the saved model into a serving snapshot at PATH "
        "(what 'anyopt serve --snapshot' loads)",
    )
    p.set_defaults(func=cmd_discover)

    p = sub.add_parser(
        "audit",
        parents=[stats, faults, runtime],
        help="audit a saved model's prediction integrity; optionally self-heal it",
    )
    p.add_argument("--testbed", required=True)
    p.add_argument("--model", required=True)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--ground-truth",
        type=int,
        default=0,
        metavar="K",
        help="deploy K seeded-random configurations and cross-check predicted "
        "catchments against the simulator (0 disables the cross-check)",
    )
    p.add_argument(
        "--min-accuracy",
        type=_probability,
        default=0.9,
        help="cross-check accuracy floor; below it the audit exits 3",
    )
    p.add_argument(
        "--repair",
        action="store_true",
        help="re-run only the implicated experiments until the findings clear "
        "or the budget runs out",
    )
    p.add_argument(
        "--max-rounds",
        type=_positive_int,
        default=3,
        help="escalating repair rounds before giving up",
    )
    p.add_argument(
        "--repair-budget",
        type=_positive_int,
        default=None,
        metavar="N",
        help="overall cap on re-run BGP experiments across all repair rounds",
    )
    p.add_argument(
        "--parallelism",
        type=_positive_int,
        default=None,
        help="repair workers (results are identical to serial)",
    )
    p.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="write a repair checkpoint after each round; if PATH exists, "
        "resume from it",
    )
    p.add_argument(
        "--out",
        default=None,
        help="where to save the repaired model (with --repair)",
    )
    p.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="write the audit report (and repair transcript) as JSON to PATH",
    )
    p.add_argument(
        "--snapshot-out",
        default=None,
        metavar="PATH",
        help="publish the (possibly repaired) model as a serving snapshot at "
        "PATH — an atomic replace, so a running 'anyopt serve' can hot-reload it",
    )
    p.set_defaults(func=cmd_audit)

    p = sub.add_parser("optimize", parents=[stats], help="offline configuration search")
    p.add_argument("--testbed", required=True)
    p.add_argument("--model", required=True)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--size", type=int, default=None, help="deployment size")
    p.add_argument(
        "--strategy",
        choices=list(available_strategies()),
        default="exhaustive",
    )
    p.add_argument("--max-evaluations", type=int, default=None)
    p.set_defaults(func=cmd_optimize)

    p = sub.add_parser("evaluate", parents=[stats], help="deploy a config and check predictions")
    p.add_argument("--testbed", required=True)
    p.add_argument("--model", required=True)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--sites", type=_parse_id_list, required=True)
    p.add_argument("--peers", type=_parse_id_list, default=())
    p.set_defaults(func=cmd_evaluate)

    p = sub.add_parser("catchment", parents=[stats], help="deploy a config and map catchments")
    p.add_argument("--testbed", required=True)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--sites", type=_parse_id_list, required=True)
    p.add_argument("--peers", type=_parse_id_list, default=())
    p.add_argument("--chart", action="store_true", help="also draw the RTT CDF")
    p.set_defaults(func=cmd_catchment)

    p = sub.add_parser(
        "peers",
        parents=[stats, faults, runtime],
        help="one-pass beneficial-peer selection",
    )
    p.add_argument("--testbed", required=True)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--sites", type=_parse_id_list, required=True)
    p.add_argument("--max-peers", type=int, default=None)
    p.add_argument(
        "--parallelism",
        type=_positive_int,
        default=None,
        help="peer-probe workers (results are identical to serial)",
    )
    p.set_defaults(func=cmd_peers)

    p = sub.add_parser("stability", parents=[stats], help="weekly re-measurement study (S6)")
    p.add_argument("--testbed", required=True)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--sites", type=_parse_id_list, required=True)
    p.add_argument("--epochs", type=int, default=3)
    p.set_defaults(func=cmd_stability)

    p = sub.add_parser(
        "explain", help="narrate why one client lands at its catchment site"
    )
    p.add_argument("--testbed", required=True)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--sites", type=_parse_id_list, required=True)
    p.add_argument("--peers", type=_parse_id_list, default=())
    p.add_argument("--client", type=int, required=True, help="client ASN")
    p.set_defaults(func=cmd_explain)

    p = sub.add_parser(
        "diff", help="compare the catchments of two configurations"
    )
    p.add_argument("--testbed", required=True)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--before", type=_parse_id_list, required=True)
    p.add_argument("--after", type=_parse_id_list, required=True)
    p.set_defaults(func=cmd_diff)

    p = sub.add_parser(
        "snapshot",
        help="compile a saved model into a serving snapshot, or inspect one",
    )
    p.add_argument("--testbed", default=None, help="testbed JSON (compile mode)")
    p.add_argument("--model", default=None, help="saved model JSON to compile")
    p.add_argument("--out", default=None, help="where to write the compiled snapshot")
    p.add_argument(
        "--snapshot",
        default=None,
        metavar="PATH",
        help="inspect an existing snapshot instead of compiling one",
    )
    p.add_argument(
        "--verify",
        action="store_true",
        help="with --snapshot, also checksum the full payload",
    )
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_snapshot)

    p = sub.add_parser(
        "predict",
        help="batched offline catchment prediction from a snapshot",
    )
    p.add_argument("--snapshot", required=True, help="compiled snapshot to query")
    p.add_argument("--sites", type=_parse_id_list, required=True)
    p.add_argument(
        "--clients",
        type=_parse_id_list,
        default=None,
        help="client ids to predict (default: every client in the snapshot)",
    )
    p.add_argument(
        "--limit",
        type=_positive_int,
        default=20,
        help="prediction rows to print",
    )
    p.set_defaults(func=cmd_predict)

    p = sub.add_parser(
        "serve",
        parents=[stats],
        help="serve catchment predictions over HTTP from a snapshot",
    )
    p.add_argument(
        "--snapshot", default=None, help="compiled snapshot to serve"
    )
    p.add_argument(
        "--testbed", default=None, help="testbed JSON (with --model, compiles a snapshot)"
    )
    p.add_argument(
        "--model",
        default=None,
        help="saved model JSON to compile and serve when --snapshot is absent",
    )
    p.add_argument(
        "--out",
        default=None,
        help="where the on-the-fly snapshot is written (default: MODEL.snap)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=_port, default=8080)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--latency-slo-ms",
        type=_positive_float,
        default=250.0,
        metavar="MS",
        help="latency-SLO threshold: 99%% of requests should answer within "
        "MS milliseconds (default: 250)",
    )
    p.add_argument(
        "--max-snapshot-age",
        type=_positive_float,
        default=86400.0,
        metavar="SECONDS",
        help="freshness-SLO budget: /slozz warns at 75%% of this snapshot "
        "age and pages past it (default: 86400 = one day)",
    )
    p.add_argument(
        "--request-timeout",
        type=_timeout_or_none,
        default=30.0,
        metavar="SECONDS",
        help="handler deadline per request; expiry sheds a structured 503 "
        "(default: 30; 0 or 'none' disables)",
    )
    p.add_argument(
        "--header-timeout",
        type=_timeout_or_none,
        default=10.0,
        metavar="SECONDS",
        help="deadline for reading a request's header section — the "
        "slow-loris bound (default: 10; 0 or 'none' disables)",
    )
    p.add_argument(
        "--body-timeout",
        type=_timeout_or_none,
        default=30.0,
        metavar="SECONDS",
        help="deadline for reading a request body (default: 30)",
    )
    p.add_argument(
        "--write-timeout",
        type=_timeout_or_none,
        default=30.0,
        metavar="SECONDS",
        help="deadline for flushing a response to a slow-reading client; "
        "expiry aborts the connection (default: 30)",
    )
    p.add_argument(
        "--idle-timeout",
        type=_timeout_or_none,
        default=120.0,
        metavar="SECONDS",
        help="reap a keep-alive connection idle this long (default: 120)",
    )
    p.add_argument(
        "--max-connections",
        type=_positive_int,
        default=1024,
        metavar="N",
        help="connection admission cap; excess connections are shed with a "
        "structured 503 + Retry-After (default: 1024)",
    )
    p.add_argument(
        "--max-inflight",
        type=_positive_int,
        default=64,
        metavar="N",
        help="in-flight request cap; excess requests are shed with a "
        "structured 429 + Retry-After (default: 64)",
    )
    p.add_argument(
        "--max-headers",
        type=_positive_int,
        default=100,
        metavar="N",
        help="per-request header-line cap; excess answers 431 (default: 100)",
    )
    p.add_argument(
        "--shed-retry-after",
        type=_positive_float,
        default=1.0,
        metavar="SECONDS",
        help="Retry-After advertised on shed responses (default: 1)",
    )
    p.add_argument(
        "--drain-grace",
        type=_positive_float,
        default=10.0,
        metavar="SECONDS",
        help="graceful-shutdown drain budget; past it, stuck handlers are "
        "cancelled and their transports aborted (default: 10)",
    )
    p.add_argument(
        "--watch",
        action="store_true",
        help="reload-on-publish: poll the snapshot path and hot-swap the "
        "model when a new version is atomically published",
    )
    p.add_argument(
        "--watch-interval",
        type=_positive_float,
        default=2.0,
        metavar="SECONDS",
        help="snapshot watcher poll interval (default: 2)",
    )
    p.add_argument(
        "--watch-debounce",
        type=_nonneg_float,
        default=0.5,
        metavar="SECONDS",
        help="how long a new snapshot stat must hold still before the "
        "watcher loads it (default: 0.5)",
    )
    p.add_argument(
        "--watch-backoff",
        type=_positive_float,
        default=2.0,
        metavar="SECONDS",
        help="base backoff after a failed watcher load; doubles per "
        "consecutive failure (default: 2)",
    )
    p.add_argument(
        "--watch-max-backoff",
        type=_positive_float,
        default=300.0,
        metavar="SECONDS",
        help="backoff ceiling for the watcher circuit breaker (default: 300)",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "chaos",
        help="storm a model server with seeded hostile-client faults and "
        "snapshot publish churn, then assert the serving invariants",
    )
    p.add_argument(
        "--snapshot", required=True,
        help="snapshot path the server serves (and the harness republishes)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port",
        type=_port,
        default=None,
        help="port of an already-running 'anyopt serve --watch' to storm; "
        "omit to self-host a guarded server in-process",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--requests",
        type=_positive_int,
        default=60,
        help="request events in the storm (default: 60)",
    )
    p.add_argument(
        "--concurrency",
        type=_positive_int,
        default=6,
        help="concurrent chaos clients (default: 6)",
    )
    p.add_argument(
        "--publishes",
        type=int,
        default=4,
        help="mid-storm snapshot publish events; a final good publish is "
        "always appended (default: 4)",
    )
    p.add_argument(
        "--fault-prob",
        type=_probability,
        default=0.25,
        help="per-request hostile-client fault probability (default: 0.25)",
    )
    p.add_argument(
        "--corrupt-prob",
        type=_probability,
        default=0.5,
        help="per-publish corrupt-snapshot probability (default: 0.5)",
    )
    p.add_argument(
        "--watch-interval",
        type=_positive_float,
        default=0.25,
        metavar="SECONDS",
        help="watcher poll interval assumed on the server — match the "
        "server's --watch-interval (default: 0.25)",
    )
    p.add_argument(
        "--watch-debounce",
        type=_nonneg_float,
        default=0.0,
        metavar="SECONDS",
        help="watcher debounce assumed on the server (default: 0)",
    )
    p.add_argument(
        "--header-timeout",
        type=_positive_float,
        default=0.5,
        metavar="SECONDS",
        help="header deadline assumed on the server — match the server's "
        "--header-timeout (default: 0.5)",
    )
    p.add_argument(
        "--write-timeout",
        type=_positive_float,
        default=0.5,
        metavar="SECONDS",
        help="write deadline assumed on the server (default: 0.5)",
    )
    p.add_argument(
        "--max-inflight",
        type=_positive_int,
        default=4,
        help="in-flight cap assumed on the server (default: 4)",
    )
    p.add_argument(
        "--client-timeout",
        type=_positive_float,
        default=20.0,
        metavar="SECONDS",
        help="client-side per-request give-up; any hit fails the "
        "no-client-timeouts invariant (default: 20)",
    )
    p.add_argument(
        "--report", default=None, metavar="PATH",
        help="write the JSON chaos report here",
    )
    p.add_argument(
        "--metricsz-out", default=None, metavar="PATH",
        help="write the post-storm /metricsz scrape here",
    )
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser(
        "inspect-trace",
        help="summarize a --trace JSONL file: slowest experiments, retry "
        "hot spots, fault timeline, phase breakdown",
    )
    p.add_argument("trace_file", metavar="TRACE", help="JSONL file written by --trace")
    p.add_argument(
        "--top",
        type=_positive_int,
        default=10,
        help="rows in the slowest-experiments and retry tables",
    )
    p.set_defaults(func=cmd_inspect_trace)

    p = sub.add_parser(
        "watch",
        help="tail and render a campaign --heartbeat file",
    )
    p.add_argument(
        "heartbeat_file", metavar="HEARTBEAT",
        help="JSONL file a campaign is writing via --heartbeat",
    )
    p.add_argument(
        "--no-follow",
        action="store_true",
        help="render the records already in the file and exit instead of tailing",
    )
    p.add_argument(
        "--poll",
        type=_positive_float,
        default=1.0,
        metavar="SECONDS",
        help="poll interval while tailing (default: 1)",
    )
    p.add_argument(
        "--max-polls",
        type=_positive_int,
        default=None,
        metavar="N",
        help="stop after N consecutive empty polls (default: tail until the "
        "campaign's final record)",
    )
    p.set_defaults(func=cmd_watch)

    p = sub.add_parser("plan", help="measurement budget analysis (S4.5)")
    p.add_argument("--sites", type=int, required=True)
    p.add_argument("--providers", type=int, required=True)
    p.add_argument("--site-level", choices=["pairwise", "rtt"], default="rtt")
    p.add_argument("--prefixes", type=int, default=4)
    p.add_argument("--spacing-hours", type=float, default=2.0)
    p.set_defaults(func=cmd_plan)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging(
        level=getattr(args, "log_level", None) or "warning",
        json_output=getattr(args, "log_json", False),
    )
    try:
        if getattr(args, "profile", None):
            import cProfile
            import pstats

            profiler = cProfile.Profile()
            code = profiler.runcall(args.func, args)
            profiler.dump_stats(args.profile)
            print(f"\nprofile written to {args.profile}; top functions:")
            pstats.Stats(profiler).sort_stats("cumulative").print_stats(10)
        else:
            code = args.func(args)
        anyopt = getattr(args, "_anyopt", None)
        if anyopt is not None:
            if getattr(args, "stats", False):
                print("\ncampaign stats:")
                print(render_metrics(anyopt.metrics.snapshot()))
            if getattr(args, "trace", None):
                write_trace_jsonl(anyopt.tracer.records(), args.trace)
                print(f"trace written to {args.trace}")
            if getattr(args, "metrics_out", None):
                write_prometheus(anyopt.metrics.snapshot(), args.metrics_out)
                print(f"metrics written to {args.metrics_out}")
        return code
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        # Campaign executors now outlive their phase (the warm pool);
        # shut the pool down with the process, even on error paths.
        anyopt = getattr(args, "_anyopt", None)
        if anyopt is not None:
            anyopt.close()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
