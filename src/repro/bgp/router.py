"""BGP speaker logic for one AS.

A :class:`BGPSpeaker` is a pure state machine: it consumes
announcements, withdrawals, and local injections, updates its RIBs, and
returns the outgoing updates its export policy requires.  Timing is the
engine's concern; the speaker only records the arrival timestamps it is
given (they feed the arrival-order tie-break of
:mod:`repro.bgp.decision`).
"""

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.bgp.decision import best_route, multipath_set
from repro.bgp.messages import Route, SitePop
from repro.bgp.policy import export_targets, local_pref_for
from repro.bgp.rib import RouterState
from repro.topology.astopo import AS, ASGraph, Relationship
from repro.util.errors import ReproError


@dataclass(frozen=True)
class OutgoingUpdate:
    """An update this speaker wants delivered to a neighbor.

    ``as_path`` is the path as it should appear at the receiver (this
    speaker's ASN already prepended).  ``as_path=None`` is a withdrawal.
    """

    neighbor: int
    as_path: Optional[Tuple[int, ...]]
    med: int = 0


class BGPSpeaker:
    """The BGP process of a single AS for the anycast prefix.

    ``igp_overlay`` maps ``(asn, neighbor)`` to a session interior
    cost overriding the topology's static one — the engine uses it to
    model interior-routing churn between experiments.
    """

    def __init__(self, graph: ASGraph, node: AS, prefix: str, igp_overlay=None):
        self.graph = graph
        self.node = node
        self.prefix = prefix
        self.igp_overlay = igp_overlay or {}
        self.state = RouterState(node.asn)

    # -- inputs ----------------------------------------------------------

    def inject(
        self,
        origin_asn: int,
        rel_of_origin: Relationship,
        site_pop: SitePop,
        now: float,
        prepend: int = 0,
        poison: Tuple[int, ...] = (),
    ) -> List[OutgoingUpdate]:
        """Install a locally-originated anycast route (a directly
        attached site announced to this AS).

        Multiple sites announcing through the same AS merge into one
        AS-level route whose arrival time is the earliest announcement;
        site-level differences are resolved in the data plane (paper
        S4.3: they disappear once the prefix is re-advertised).

        ``prepend`` lengthens this session's announced AS path.  When
        sessions of the same AS announce different path lengths, the
        interior routers all prefer the shortest, so only the
        shortest-path sessions keep their data-plane attachments (a
        prepended site loses its catchment inside its own provider).
        Withdrawing the last short-path site does not resurrect a
        previously shadowed prepended one; experiments deploy fresh
        configurations, as the paper's do.

        ``poison`` lists ASNs spliced into the announced path
        (``origin, poisoned..., origin``): their loop prevention drops
        the route, steering traffic around them at the cost of a
        longer path (paper S6, BGP poisoning).
        """
        if self.node.asn in poison:
            raise ReproError(
                f"cannot poison AS {self.node.asn}: it hosts the announcement"
            )
        as_path = (origin_asn,) * (1 + prepend)
        if poison:
            as_path = (origin_asn,) + tuple(poison) + as_path
        existing = self.state.adj_rib_in.get(origin_asn)
        if existing is not None:
            if len(as_path) > len(existing.as_path):
                return []  # shadowed by a shorter-path session
            if len(as_path) == len(existing.as_path):
                pops = tuple(sorted(
                    set(existing.site_pops) | {site_pop},
                    key=lambda sp: sp.site_id,
                ))
            else:
                pops = (site_pop,)  # strictly shorter: replaces the set
            route = Route(
                prefix=self.prefix,
                as_path=as_path,
                learned_from=origin_asn,
                local_pref=existing.local_pref,
                learned_rel=existing.learned_rel,
                arrival_time=min(existing.arrival_time, now),
                site_pops=pops,
            )
        else:
            route = Route(
                prefix=self.prefix,
                as_path=as_path,
                learned_from=origin_asn,
                local_pref=local_pref_for(self.node, origin_asn, rel_of_origin),
                learned_rel=rel_of_origin,
                arrival_time=now,
                site_pops=(SitePop(site_pop.site_id, site_pop.pop_id, site_pop.link_rtt_ms),),
            )
        self.state.adj_rib_in[origin_asn] = route
        return self._reevaluate()

    def receive_announcement(
        self,
        neighbor: int,
        as_path: Tuple[int, ...],
        med: int,
        now: float,
    ) -> List[OutgoingUpdate]:
        """Process an announcement from ``neighbor``; returns exports."""
        if self.node.asn in as_path:
            # Loop prevention: a path containing our own ASN is dropped.
            return []
        existing = self.state.adj_rib_in.get(neighbor)
        if (
            existing is not None
            and existing.as_path == as_path
            and existing.med == med
        ):
            # Duplicate refresh: route age is preserved, nothing changes.
            return []
        rel = self.graph.rel(self.node.asn, neighbor)
        link = self.graph.link(self.node.asn, neighbor)
        interior = self.igp_overlay.get((self.node.asn, neighbor))
        if interior is None:
            interior = link.igp_cost.get(self.node.asn, 0)
        route = Route(
            prefix=self.prefix,
            as_path=as_path,
            learned_from=neighbor,
            local_pref=local_pref_for(self.node, neighbor, rel),
            learned_rel=rel,
            med=med,
            interior_cost=interior,
            arrival_time=now,
        )
        self.state.adj_rib_in[neighbor] = route
        return self._reevaluate()

    def receive_withdrawal(self, neighbor: int) -> List[OutgoingUpdate]:
        """Process a withdrawal from ``neighbor``; returns exports."""
        if neighbor not in self.state.adj_rib_in:
            return []
        del self.state.adj_rib_in[neighbor]
        return self._reevaluate()

    def withdraw_injection(self, origin_asn: int, site_id: int) -> List[OutgoingUpdate]:
        """Remove one site from a locally injected route; drop the
        route entirely when its last site is withdrawn."""
        existing = self.state.adj_rib_in.get(origin_asn)
        if existing is None:
            return []
        remaining = tuple(sp for sp in existing.site_pops if sp.site_id != site_id)
        if remaining:
            self.state.adj_rib_in[origin_asn] = Route(
                prefix=existing.prefix,
                as_path=existing.as_path,
                learned_from=existing.learned_from,
                local_pref=existing.local_pref,
                learned_rel=existing.learned_rel,
                arrival_time=existing.arrival_time,
                site_pops=remaining,
            )
        else:
            del self.state.adj_rib_in[origin_asn]
        return self._reevaluate()

    # -- decision + export -------------------------------------------------

    def _reevaluate(self) -> List[OutgoingUpdate]:
        state = self.state
        old_best = state.best
        new_best = best_route(state.routes(), self.node)
        state.best = new_best
        state.multipath = multipath_set(state.routes(), self.node)

        if new_best is None:
            out = [
                OutgoingUpdate(neighbor=n, as_path=None)
                for n in sorted(state.advertised_to)
            ]
            state.advertised_to.clear()
            return out

        if new_best.materially_equal(old_best):
            return []

        export_path = (self.node.asn,) + new_best.as_path
        targets = [
            n
            for n in export_targets(
                self.graph, self.node.asn, new_best.learned_rel, new_best.learned_from
            )
            if n not in new_best.as_path
        ]
        out: List[OutgoingUpdate] = []
        target_set = set(targets)
        for stale in sorted(set(state.advertised_to) - target_set):
            out.append(OutgoingUpdate(neighbor=stale, as_path=None))
            del state.advertised_to[stale]
        for n in sorted(target_set):
            previously = state.advertised_to.get(n)
            if previously is not None and previously.as_path == export_path:
                continue
            advertised = Route(
                prefix=self.prefix,
                as_path=export_path,
                learned_from=self.node.asn,
                local_pref=0,
            )
            state.advertised_to[n] = advertised
            out.append(OutgoingUpdate(neighbor=n, as_path=export_path))
        return out
