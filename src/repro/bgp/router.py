"""BGP speaker logic for one AS.

A :class:`BGPSpeaker` is a pure state machine: it consumes
announcements, withdrawals, and local injections, updates its RIBs, and
returns the outgoing updates its export policy requires.  Timing is the
engine's concern; the speaker only records the arrival timestamps it is
given (they feed the arrival-order tie-break of
:mod:`repro.bgp.decision`).

Speakers run in one of two modes.  With ``tables`` (a
:class:`~repro.topology.precompute.TopologyTables`) they read import
preferences, interior costs, and presorted export sets from the shared
per-topology tables — the fast path the engine uses for repeated runs.
Without tables they derive everything through per-call graph lookups,
which is the reference path the fast path is tested against.  Both
produce identical updates in identical order.
"""

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.bgp.decision import best_route, multipath_set
from repro.bgp.messages import Route, SitePop, make_route
from repro.bgp.policy import export_targets, local_pref_for
from repro.bgp.rib import RouterState
from repro.topology.astopo import AS, ASGraph, Relationship
from repro.util.errors import ReproError


@dataclass(frozen=True)
class OutgoingUpdate:
    """An update this speaker wants delivered to a neighbor.

    ``as_path`` is the path as it should appear at the receiver (this
    speaker's ASN already prepended).  ``as_path=None`` is a withdrawal.
    """

    neighbor: int
    as_path: Optional[Tuple[int, ...]]
    med: int = 0


class BGPSpeaker:
    """The BGP process of a single AS for the anycast prefix.

    ``igp_overlay`` maps ``(asn, neighbor)`` to a session interior
    cost overriding the topology's static one — the engine uses it to
    model interior-routing churn between experiments.  The engine's
    speaker pool reassigns it between runs.
    """

    __slots__ = ("graph", "node", "prefix", "igp_overlay", "state", "_tables")

    def __init__(self, graph: ASGraph, node: AS, prefix: str, igp_overlay=None, tables=None):
        self.graph = graph
        self.node = node
        self.prefix = prefix
        self.igp_overlay = igp_overlay or {}
        self.state = RouterState(node.asn)
        self._tables = tables

    # -- inputs ----------------------------------------------------------

    def inject(
        self,
        origin_asn: int,
        rel_of_origin: Relationship,
        site_pop: SitePop,
        now: float,
        prepend: int = 0,
        poison: Tuple[int, ...] = (),
    ) -> List[OutgoingUpdate]:
        """Install a locally-originated anycast route (a directly
        attached site announced to this AS).

        Multiple sites announcing through the same AS merge into one
        AS-level route whose arrival time is the earliest announcement;
        site-level differences are resolved in the data plane (paper
        S4.3: they disappear once the prefix is re-advertised).

        ``prepend`` lengthens this session's announced AS path.  When
        sessions of the same AS announce different path lengths, the
        interior routers all prefer the shortest, so only the
        shortest-path sessions keep their data-plane attachments (a
        prepended site loses its catchment inside its own provider).
        Withdrawing the last short-path site does not resurrect a
        previously shadowed prepended one; experiments deploy fresh
        configurations, as the paper's do.

        ``poison`` lists ASNs spliced into the announced path
        (``origin, poisoned..., origin``): their loop prevention drops
        the route, steering traffic around them at the cost of a
        longer path (paper S6, BGP poisoning).
        """
        if self.node.asn in poison:
            raise ReproError(
                f"cannot poison AS {self.node.asn}: it hosts the announcement"
            )
        as_path = (origin_asn,) * (1 + prepend)
        if poison:
            as_path = (origin_asn,) + tuple(poison) + as_path
        existing = self.state.adj_rib_in.get(origin_asn)
        if existing is not None:
            if len(as_path) > len(existing.as_path):
                return []  # shadowed by a shorter-path session
            if len(as_path) == len(existing.as_path):
                pops = tuple(sorted(
                    set(existing.site_pops) | {site_pop},
                    key=lambda sp: sp.site_id,
                ))
            else:
                pops = (site_pop,)  # strictly shorter: replaces the set
            route = Route(
                prefix=self.prefix,
                as_path=as_path,
                learned_from=origin_asn,
                local_pref=existing.local_pref,
                learned_rel=existing.learned_rel,
                arrival_time=min(existing.arrival_time, now),
                site_pops=pops,
            )
        else:
            route = Route(
                prefix=self.prefix,
                as_path=as_path,
                learned_from=origin_asn,
                local_pref=local_pref_for(self.node, origin_asn, rel_of_origin),
                learned_rel=rel_of_origin,
                arrival_time=now,
                site_pops=(SitePop(site_pop.site_id, site_pop.pop_id, site_pop.link_rtt_ms),),
            )
        self.state.adj_rib_in[origin_asn] = route
        return self._reevaluate()

    def receive_announcement(
        self,
        neighbor: int,
        as_path: Tuple[int, ...],
        med: int,
        now: float,
    ) -> List[OutgoingUpdate]:
        """Process an announcement from ``neighbor``; returns exports."""
        asn = self.node.asn
        if asn in as_path:
            # Loop prevention: a path containing our own ASN is dropped.
            return []
        adj_rib_in = self.state.adj_rib_in
        existing = adj_rib_in.get(neighbor)
        if (
            existing is not None
            and existing.as_path == as_path
            and existing.med == med
        ):
            # Duplicate refresh: route age is preserved, nothing changes.
            return []
        tables = self._tables
        if tables is not None:
            session = (asn, neighbor)
            local_pref, interior, rel = tables.session_import[session]
            overlay = self.igp_overlay.get(session)
            if overlay is not None:
                interior = overlay
            adj_rib_in[neighbor] = make_route(
                self.prefix, as_path, neighbor, local_pref, rel, med, interior, now
            )
        else:
            rel = self.graph.rel(asn, neighbor)
            local_pref = local_pref_for(self.node, neighbor, rel)
            interior = self.igp_overlay.get((asn, neighbor))
            if interior is None:
                link = self.graph.link(asn, neighbor)
                interior = link.igp_cost.get(asn, 0)
            adj_rib_in[neighbor] = Route(
                prefix=self.prefix,
                as_path=as_path,
                learned_from=neighbor,
                local_pref=local_pref,
                learned_rel=rel,
                med=med,
                interior_cost=interior,
                arrival_time=now,
            )
        return self._reevaluate()

    def receive_withdrawal(self, neighbor: int) -> List[OutgoingUpdate]:
        """Process a withdrawal from ``neighbor``; returns exports."""
        if neighbor not in self.state.adj_rib_in:
            return []
        del self.state.adj_rib_in[neighbor]
        return self._reevaluate()

    def withdraw_injection(self, origin_asn: int, site_id: int) -> List[OutgoingUpdate]:
        """Remove one site from a locally injected route; drop the
        route entirely when its last site is withdrawn."""
        existing = self.state.adj_rib_in.get(origin_asn)
        if existing is None:
            return []
        remaining = tuple(sp for sp in existing.site_pops if sp.site_id != site_id)
        if remaining:
            self.state.adj_rib_in[origin_asn] = Route(
                prefix=existing.prefix,
                as_path=existing.as_path,
                learned_from=existing.learned_from,
                local_pref=existing.local_pref,
                learned_rel=existing.learned_rel,
                arrival_time=existing.arrival_time,
                site_pops=remaining,
            )
        else:
            del self.state.adj_rib_in[origin_asn]
        return self._reevaluate()

    # -- decision + export -------------------------------------------------

    def _reevaluate(self) -> List[OutgoingUpdate]:
        state = self.state
        old_best = state.best
        tables = self._tables
        node = self.node
        if tables is not None:
            # Inlined copy of decision.evaluate(): this runs once per
            # delivered message and the call overhead is measurable.
            # Keep in lockstep with decision.evaluate.
            adj_rib_in = state.adj_rib_in
            if len(adj_rib_in) == 1:
                # Single candidate (stubs, injection hosts): the scan
                # and every tie-break are no-ops.
                new_best = next(iter(adj_rib_in.values()))
                state.best = new_best
                state.multipath = [new_best]
                return self._export_updates(state, old_best, new_best, tables)
            best_key = None
            tied: List[Route] = []
            for r in state.adj_rib_in.values():
                # The strict key is a pure function of the (frozen)
                # route, so it is computed once and cached on the
                # instance; ribs are rescanned on every delivery.
                try:
                    k = r.strict_key
                except AttributeError:
                    k = (-r.local_pref, len(r.as_path), r.origin_code, r.med, r.interior_cost)
                    object.__setattr__(r, "strict_key", k)
                if best_key is None or k < best_key:
                    best_key = k
                    tied = [r]
                elif k == best_key:
                    tied.append(r)
            if not tied:
                new_best = None
                multipath: List[Route] = []
            elif len(tied) == 1:
                new_best = tied[0]
                multipath = tied
            else:
                if node.arrival_order_tiebreak:
                    new_best = min(tied, key=lambda r: (r.arrival_time, r.learned_from))
                else:
                    new_best = min(tied, key=lambda r: r.learned_from)
                tied.sort(key=lambda r: r.learned_from)
                multipath = tied
        else:
            # Reference path: the original two-pass decision.
            routes = state.routes()
            new_best = best_route(routes, node)
            multipath = multipath_set(routes, node)
        state.best = new_best
        state.multipath = multipath
        return self._export_updates(state, old_best, new_best, tables)

    def _export_updates(self, state, old_best, new_best, tables) -> List[OutgoingUpdate]:
        """Exports required by a best-route change (decision's tail)."""
        if new_best is None:
            if not state.advertised_to:
                return []
            out = [
                OutgoingUpdate(neighbor=n, as_path=None)
                for n in sorted(state.advertised_to)
            ]
            state.advertised_to.clear()
            return out

        if (
            old_best is not None
            and new_best.as_path == old_best.as_path
            and new_best.learned_from == old_best.learned_from
            and new_best.med == old_best.med
            and new_best.origin_code == old_best.origin_code
        ):
            # materially_equal(old_best), inlined.
            return []

        asn = self.node.asn
        learned_from = new_best.learned_from
        as_path = new_best.as_path
        export_path = (asn,) + as_path
        # The export base is presorted (hoisted into the topology
        # tables), so only the usually-empty stale set needs a sort
        # here — the old path re-sorted both sets per reevaluation.
        if tables is not None:
            base = tables.export_targets(asn, new_best.learned_rel)
        else:
            base = tuple(sorted(
                export_targets(self.graph, asn, new_best.learned_rel, learned_from)
            ))
        advertised = state.advertised_to
        out: List[OutgoingUpdate] = []
        if advertised:
            target_set = {
                n for n in base if n != learned_from and n not in as_path
            }
            for stale in sorted(set(advertised) - target_set):
                out.append(OutgoingUpdate(neighbor=stale, as_path=None))
                del advertised[stale]
        # One frozen Route is shared across all targets (identical
        # value per target; the per-target copies the old path built
        # were pure allocation overhead).
        exported: Optional[Route] = None
        for n in base:
            if n == learned_from or n in as_path:
                continue
            previously = advertised.get(n)
            if previously is not None and previously.as_path == export_path:
                continue
            if exported is None:
                if tables is not None:
                    exported = make_route(self.prefix, export_path, asn, 0)
                else:
                    exported = Route(
                        prefix=self.prefix,
                        as_path=export_path,
                        learned_from=asn,
                        local_pref=0,
                    )
            advertised[n] = exported
            out.append(OutgoingUpdate(neighbor=n, as_path=export_path))
        return out
