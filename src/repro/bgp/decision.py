"""The BGP best-path decision process.

Implements the route-selection algorithm the paper walks through in
S4.1/S4.2, in order:

1. highest LOCAL_PREF;
2. shortest AS_PATH;
3. lowest origin code;
4. lowest MED;
5. (eBGP over iBGP — all sessions here are eBGP, so a no-op);
6. (lowest IGP cost — intra-AS effects are resolved in the data plane
   by :mod:`repro.bgp.dataplane`, so a no-op at the AS level);
7. **oldest route first** — the arrival-order tie-break that Cisco and
   Juniper implement but the BGP standard omits; applied only when the
   AS's ``arrival_order_tiebreak`` flag is set;
8. lowest neighbor (router) id.

``multipath_set`` returns the routes tied through step 4, which is the
set a multipath-enabled AS load-balances across.
"""

from typing import List, Optional, Sequence, Tuple

from repro.bgp.messages import Route
from repro.topology.astopo import AS


def _strict_key(route: Route) -> Tuple:
    """Ordering through the deterministic comparison steps
    (LOCAL_PREF, AS_PATH length, origin, MED, interior cost)."""
    return (
        -route.local_pref,
        route.path_length,
        route.origin_code,
        route.med,
        route.interior_cost,
    )


def _full_key(route: Route, node: AS) -> Tuple:
    """Ordering through all steps, honouring the AS's tie-break mode."""
    arrival = route.arrival_time if node.arrival_order_tiebreak else 0.0
    return _strict_key(route) + (arrival, route.learned_from)


def evaluate(routes: Sequence[Route], node: AS) -> Tuple[Optional[Route], List[Route]]:
    """One-pass decision: ``(best route, multipath set)``.

    The best route always survives the deterministic comparison steps,
    so it lies inside the strict-tied set; computing both together
    costs one strict key per route instead of the three that separate
    :func:`best_route` / :func:`multipath_set` calls pay.  This is the
    speaker's per-message hot path.
    """
    if len(routes) == 1:
        # Single candidate: the scan and every tie-break are no-ops.
        # Stubs and injection hosts — most of a large topology — take
        # this exit on every delivery.
        only = routes[0] if isinstance(routes, (list, tuple)) else next(iter(routes))
        return only, [only]
    best_key = None
    tied: List[Route] = []
    for r in routes:
        # _strict_key, inlined and cached on the (frozen) route: the
        # key is a pure function of the route, and ribs are rescanned
        # on every delivery.
        try:
            k = r.strict_key
        except AttributeError:
            k = (-r.local_pref, len(r.as_path), r.origin_code, r.med, r.interior_cost)
            object.__setattr__(r, "strict_key", k)
        if best_key is None or k < best_key:
            best_key = k
            tied = [r]
        elif k == best_key:
            tied.append(r)
    if not tied:
        return None, []
    if len(tied) == 1:
        return tied[0], tied
    if node.arrival_order_tiebreak:
        best = min(tied, key=lambda r: (r.arrival_time, r.learned_from))
    else:
        best = min(tied, key=lambda r: r.learned_from)
    tied.sort(key=lambda r: r.learned_from)
    return best, tied


def best_route(routes: Sequence[Route], node: AS) -> Optional[Route]:
    """The single best route for ``node``, or None if no routes.

    >>> best_route([], None) is None
    True
    """
    if not routes:
        return None
    return min(routes, key=lambda r: _full_key(r, node))


def multipath_set(routes: Sequence[Route], node: AS) -> List[Route]:
    """Routes a multipath AS balances over: all tied through the
    deterministic steps (equal-cost multipath).

    For a single-path AS this still returns the tied set; callers
    decide whether to use it.  The result is sorted by neighbor id so
    flow-hash indexing into it is deterministic.
    """
    if not routes:
        return []
    best_key = min(_strict_key(r) for r in routes)
    tied = [r for r in routes if _strict_key(r) == best_key]
    tied.sort(key=lambda r: r.learned_from)
    return tied
