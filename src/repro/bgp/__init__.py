"""Event-driven BGP route-propagation simulator.

This package is the substrate that replaces the paper's real-world BGP
testbed.  It implements, at the AS abstraction the paper reasons about:

- Gao-Rexford selection and export policies
  (:mod:`repro.bgp.policy`);
- the full BGP best-path decision process, including the
  *arrival-order tie-break* that the paper identifies in S4.2 as a
  widespread implementation behaviour absent from the BGP standard
  (:mod:`repro.bgp.decision`);
- per-AS RIBs and speaker logic with correct withdraw-on-export-set
  change semantics (:mod:`repro.bgp.rib`, :mod:`repro.bgp.router`);
- an event-driven propagation engine with per-link control-plane
  delays and a virtual clock, so announcement arrival order is
  well-defined (:mod:`repro.bgp.engine`);
- a data-plane walker that resolves each client flow to its
  terminating AS, ingress PoP, hot-potato site choice, and path RTT
  (:mod:`repro.bgp.dataplane`).
"""

from repro.bgp.dataplane import DataPlane, ForwardingOutcome
from repro.bgp.decision import best_route, multipath_set
from repro.bgp.engine import BGPEngine, ConvergedState, SiteInjection
from repro.bgp.explain import explain_catchment
from repro.bgp.messages import Route, SitePop
from repro.bgp.policy import (
    LOCAL_PREF_CUSTOMER,
    LOCAL_PREF_PEER,
    LOCAL_PREF_PROVIDER,
    export_targets,
    local_pref_for,
)
from repro.bgp.rib import RouterState

__all__ = [
    "BGPEngine",
    "ConvergedState",
    "DataPlane",
    "ForwardingOutcome",
    "LOCAL_PREF_CUSTOMER",
    "LOCAL_PREF_PEER",
    "LOCAL_PREF_PROVIDER",
    "Route",
    "RouterState",
    "SiteInjection",
    "SitePop",
    "best_route",
    "explain_catchment",
    "export_targets",
    "local_pref_for",
    "multipath_set",
]
