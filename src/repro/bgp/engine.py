"""Event-driven propagation of anycast announcements to convergence.

The engine owns a virtual clock in milliseconds.  Each
:class:`SiteInjection` schedules a route injection at its announcement
time; speaker exports are delivered to neighbors after the link's
control-plane propagation delay.  Because delays are seeded at topology
build, the *arrival order* of competing advertisements at every AS is
deterministic — which is exactly what the paper's S4.2 experiments
manipulate by spacing announcements.

Campaigns run the engine thousands of times over one topology, so the
engine keeps a pool of speakers (and the graph's precomputed
:class:`~repro.topology.precompute.TopologyTables`) alive across runs:
a run only pays for the state it actually touched, not for rebuilding
one speaker and one dict per AS.  ``reuse_state=False`` selects the
original build-everything-per-run path, kept as the reference the fast
path is benchmarked and bit-compared against.
"""

import heapq
import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bgp.delta import DeltaConverger
from repro.bgp.messages import SitePop
from repro.bgp.rib import RouterState
from repro.bgp.router import BGPSpeaker
from repro.obs.log import get_logger
from repro.topology.astopo import Relationship
from repro.topology.generator import Internet
from repro.util.errors import ConvergenceBudgetError, ReproError
from repro.util.rng import derive_rng

logger = get_logger("engine")

#: Private ASN used as the anycast origin network (the CDN).
ANYCAST_ORIGIN_ASN = 65000

#: Test prefix announced in all experiments (paper: prefixes the
#: authors control, serving no clients).
DEFAULT_ANYCAST_PREFIX = "192.0.2.0/24"

#: Floor of the auto-scaled per-run event budget (the historical hard
#: cap; topologies large enough to need more get more — see
#: :meth:`BGPEngine.event_budget`).
_MAX_EVENTS = 2_000_000

#: Auto-budget headroom per AS: generously above the events-per-AS any
#: converging Gao-Rexford run produces (the tracked 174-AS workload
#: averages ~4 events per AS per run).
_EVENTS_PER_AS = 400


@dataclass(frozen=True)
class SiteInjection:
    """One site announcing the anycast prefix through one neighbor AS.

    Attributes:
        host_asn: the AS receiving the announcement (a transit provider
            or a settlement-free peer of the anycast network).
        site_id: the announcing anycast site.
        pop_id: attachment PoP inside ``host_asn`` (None if single-PoP).
        link_rtt_ms: RTT across the site's access link to that AS.
        rel_from_host: the anycast origin's relationship as seen by the
            host — CUSTOMER when the host sells transit to the anycast
            network, PEER for settlement-free peering.
        announce_time_ms: virtual time at which the announcement is
            made; staggering these reproduces the paper's
            announcement-order experiments.
        prepend: extra copies of the origin ASN prepended to the
            announced AS path (traffic-engineering knob; paper S6).
        poison: ASNs inserted into the announced path so their loop
            prevention drops the route — the BGP poisoning technique
            the paper lists among its future-work control knobs (S6).
    """

    host_asn: int
    site_id: int
    pop_id: Optional[int]
    link_rtt_ms: float
    rel_from_host: Relationship = Relationship.CUSTOMER
    announce_time_ms: float = 0.0
    prepend: int = 0
    poison: Tuple[int, ...] = ()


@dataclass(frozen=True)
class SiteWithdrawal:
    """Scheduled removal of one site's announcement from its host AS.

    Used to model reconfiguration: a running deployment withdraws a
    site (maintenance, DDoS response) and the engine reconverges.
    """

    host_asn: int
    site_id: int
    withdraw_time_ms: float


@dataclass
class ConvergedState:
    """The outcome of running the engine to quiescence.

    ``states`` covers every AS in the topology.  Treat the contained
    :class:`RouterState` objects as immutable: states of ASes the run
    never touched are shared between results (and with the convergence
    cache), so mutating one would corrupt other results.
    """

    prefix: str
    origin_asn: int
    states: Dict[int, RouterState]
    injections: Tuple[SiteInjection, ...]
    convergence_time_ms: float = 0.0
    message_count: int = 0
    enabled_sites: Tuple[int, ...] = field(default=())

    def state_of(self, asn: int) -> RouterState:
        try:
            return self.states[asn]
        except KeyError:
            raise ReproError(f"no BGP state for AS {asn}") from None

    def columnar(self, tables):
        """A :class:`~repro.bgp.rib.ColumnarRib` view of this state
        (built per call; bulk consumers should hold on to it)."""
        from repro.bgp.rib import ColumnarRib

        return ColumnarRib.from_converged(self, tables)


class BGPEngine:
    """Runs anycast announcements over an :class:`Internet` to
    convergence and returns the per-AS routing state.

    ``cache`` (a :class:`repro.runtime.cache.ConvergenceCache`) stores
    converged states keyed by the exact run inputs; a hit skips
    propagation entirely and is bit-identical to re-running.
    ``metrics`` (a :class:`repro.runtime.metrics.MetricsRegistry`)
    receives the convergence work counters.

    ``reuse_state=True`` (the default) enables the pooled fast path:
    speaker sets are checked out of a pool per run and returned after
    their touched state has been detached into the result, so repeated
    runs allocate O(state actually carried) instead of O(|ASes|)
    speakers and dicts.  Concurrent runs each check out their own
    speaker set, so one engine remains safe to share across executor
    threads.  ``reuse_state=False`` rebuilds everything per run (the
    pre-pool behavior); both paths produce identical results.

    ``mode`` selects how the pooled path converges: ``"delta"`` (the
    default) tracks the touched-AS set, restores only it between runs,
    and — with ``aggregate_stubs`` — collapses pure-stub ASes (every
    session with a provider, any homing degree) out of the event heap
    entirely (see :mod:`repro.bgp.delta`);
    ``"full"`` keeps a live speaker per AS.  All three paths (delta,
    full, and the ``reuse_state=False`` reference) are bit-identical.

    ``max_events`` caps the events one run may process; ``None``
    auto-scales the cap with topology size.  Exhausting it raises
    :class:`~repro.util.errors.ConvergenceBudgetError` with an event
    census.
    """

    def __init__(
        self,
        internet: Internet,
        origin_asn: int = ANYCAST_ORIGIN_ASN,
        prefix: str = DEFAULT_ANYCAST_PREFIX,
        cache=None,
        metrics=None,
        tracer=None,
        reuse_state: bool = True,
        mode: str = "delta",
        aggregate_stubs: bool = True,
        max_events: Optional[int] = None,
    ):
        if mode not in ("delta", "full"):
            raise ReproError(f"engine mode must be 'delta' or 'full', got {mode!r}")
        if max_events is not None and max_events < 1:
            raise ReproError("max_events must be >= 1 (or None for auto)")
        self.internet = internet
        self.origin_asn = origin_asn
        self.prefix = prefix
        self.cache = cache
        self.metrics = metrics
        self.tracer = tracer
        self.reuse_state = reuse_state
        self.mode = mode
        self.aggregate_stubs = aggregate_stubs
        self.max_events = max_events
        self._pool_lock = threading.Lock()
        self._pool: List[Dict[int, BGPSpeaker]] = []
        self._pool_tables = None
        # Pristine states handed out for ASes a run never gave a route
        # to; shared across results, never given to a speaker.
        self._pristine: Dict[int, RouterState] = {}
        self._delta = DeltaConverger(self) if mode == "delta" else None

    def event_budget(self) -> int:
        """The per-run event cap: explicit ``max_events``, or a budget
        scaling with topology size (never below the historical 2M
        floor, so small topologies keep their old headroom)."""
        if self.max_events is not None:
            return self.max_events
        return max(_MAX_EVENTS, _EVENTS_PER_AS * len(self.internet.graph))

    # -- speaker pool ---------------------------------------------------

    def _checkout_speakers(self, tables, igp_overlay):
        """Borrow a speaker set for one run (build one on pool miss)."""
        graph = self.internet.graph
        with self._pool_lock:
            if self._pool_tables is not tables:
                # First run, or the topology mutated: pooled speakers
                # hold stale derived data, so start the pool over.
                self._pool = []
                self._pool_tables = tables
                self._pristine = {asn: RouterState(asn) for asn in graph.asns()}
            speakers = self._pool.pop() if self._pool else None
        if speakers is None:
            speakers = {
                asn: BGPSpeaker(
                    graph, graph.as_of(asn), self.prefix, igp_overlay, tables=tables
                )
                for asn in graph.asns()
            }
        else:
            overlay = igp_overlay or {}
            for sp in speakers.values():
                sp.igp_overlay = overlay
        return speakers

    def _release_speakers(self, speakers, tables):
        """Return a speaker set whose state has been detached.

        Only called after a successful run; a run that raised leaves
        its speakers to the garbage collector rather than risk
        returning half-mutated state to the pool.
        """
        with self._pool_lock:
            if self._pool_tables is tables:
                self._pool.append(speakers)

    def _detach_states(self, speakers) -> Dict[int, RouterState]:
        """Move each touched speaker's state into a result dict.

        Speakers that ended the run with an empty state (never reached,
        or withdrawn back to empty) keep their state object and the
        result gets the shared pristine state instead — those are the
        ASes whose allocations the pool saves.
        """
        states: Dict[int, RouterState] = {}
        pristine = self._pristine
        for asn, sp in speakers.items():
            st = sp.state
            if st.adj_rib_in or st.advertised_to or st.best is not None or st.multipath:
                states[asn] = st
                sp.state = RouterState(asn)
            else:
                states[asn] = pristine[asn]
        return states

    def run(
        self,
        injections: Sequence[SiteInjection],
        igp_overlay: Optional[Dict[Tuple[int, int], int]] = None,
        delay_jitter_ms: float = 0.0,
        delay_nonce: int = 0,
        withdrawals: Sequence[SiteWithdrawal] = (),
    ) -> ConvergedState:
        """Announce the prefix per ``injections`` and converge.

        ``igp_overlay`` overrides per-session interior costs for this
        run only, modeling interior-routing changes between
        experiments (the drift that costs the paper its last few
        accuracy points).

        ``delay_jitter_ms`` adds a per-run exponential jitter to every
        link's control-plane delay (seeded by ``delay_nonce``).  With
        *spaced* announcements the spacing dominates and arrival order
        stays controlled; with *simultaneous* announcements the race
        outcome varies run to run — exactly why the paper's naive
        no-order experiments produce cyclic preferences (S5.1).

        Raises :class:`ReproError` if an injection or withdrawal
        references an AS not in the topology, and
        :class:`~repro.util.errors.ConvergenceBudgetError` (with an
        event census) if the event budget is exhausted — which would
        indicate a routing oscillation, impossible under Gao-Rexford
        policies, so treated as a bug.
        """
        graph = self.internet.graph
        if not injections:
            raise ReproError("cannot run BGP engine with no injections")
        for inj in injections:
            if inj.host_asn not in graph:
                raise ReproError(f"injection references unknown AS {inj.host_asn}")
        for wd in withdrawals:
            if wd.host_asn not in graph:
                raise ReproError(f"withdrawal references unknown AS {wd.host_asn}")

        start_unix = time.time()
        start = time.perf_counter()
        cache_key = None
        if self.cache is not None:
            cache_key = self.cache.key_for(
                injections, igp_overlay, delay_jitter_ms, delay_nonce, withdrawals
            )
            cached = self.cache.lookup(cache_key)
            if cached is not None:
                elapsed = time.perf_counter() - start
                if self.metrics is not None:
                    self.metrics.histogram("convergence_cached_s").observe(elapsed)
                if self.tracer is not None:
                    # Attributes are virtual-clock quantities, so the
                    # span is identical whether served cold or cached —
                    # except for the cache_hit flag itself.
                    self.tracer.record(
                        "converge",
                        attributes={
                            "cache_hit": True,
                            "messages": cached.message_count,
                            "convergence_time_ms": cached.convergence_time_ms,
                        },
                        start_unix=start_unix,
                        duration_s=elapsed,
                    )
                return cached

        jitter: Dict[Tuple[int, int], float] = {}
        if delay_jitter_ms > 0.0:
            rng = derive_rng(self.internet.seed, "delay-jitter", delay_nonce)
            for link in graph.links():
                jitter[(link.a, link.b)] = rng.expovariate(1.0 / delay_jitter_ms)
                jitter[(link.b, link.a)] = rng.expovariate(1.0 / delay_jitter_ms)

        budget = self.event_budget()
        if self.reuse_state and self._delta is not None:
            states, last_time, messages, events = self._delta.converge(
                injections, igp_overlay, delay_jitter_ms, jitter, withdrawals, budget
            )
        else:
            states, last_time, messages, events = self._run_full(
                injections, igp_overlay, jitter, withdrawals, budget
            )

        elapsed = time.perf_counter() - start
        if self.metrics is not None:
            self.metrics.counter("convergence_runs").increment()
            self.metrics.counter("convergence_messages").increment(messages)
            self.metrics.counter("convergence_events").increment(events)
            self.metrics.histogram("convergence_cold_s").observe(elapsed)
            self.metrics.histogram("convergence_events_per_run").observe(events)
        if self.tracer is not None:
            self.tracer.record(
                "converge",
                attributes={
                    "cache_hit": False if self.cache is not None else None,
                    "messages": messages,
                    "events": events,
                    "convergence_time_ms": last_time,
                },
                start_unix=start_unix,
                duration_s=elapsed,
            )

        withdrawn = {(wd.host_asn, wd.site_id) for wd in withdrawals}
        state = ConvergedState(
            prefix=self.prefix,
            origin_asn=self.origin_asn,
            states=states,
            injections=tuple(injections),
            convergence_time_ms=last_time,
            message_count=messages,
            enabled_sites=tuple(sorted({
                inj.site_id
                for inj in injections
                if (inj.host_asn, inj.site_id) not in withdrawn
            })),
        )
        if cache_key is not None:
            self.cache.store(cache_key, state)
        return state

    def _run_full(self, injections, igp_overlay, jitter, withdrawals, budget):
        """The full event loop: one live speaker per AS.

        Serves both the pooled ``mode="full"`` path (shared topology
        tables, speaker pool) and — with ``reuse_state=False`` — the
        build-everything-per-run reference every fast path is
        bit-compared against.
        """
        graph = self.internet.graph
        if self.reuse_state:
            tables = graph.tables()
            speakers = self._checkout_speakers(tables, igp_overlay)
            prop_delay = tables.prop_delay
        else:
            tables = None
            speakers = {
                asn: BGPSpeaker(graph, graph.as_of(asn), self.prefix, igp_overlay)
                for asn in graph.asns()
            }
            prop_delay = None

        counter = itertools.count()
        heap: List[Tuple[float, int, str, int, int, Optional[Tuple[int, ...]], int]] = []

        def schedule(time_ms, kind, receiver, sender, as_path, med=0):
            heapq.heappush(heap, (time_ms, next(counter), kind, receiver, sender, as_path, med))

        for inj in injections:
            schedule(inj.announce_time_ms, "inject", inj.host_asn, inj.site_id, None)
        for wd in withdrawals:
            schedule(wd.withdraw_time_ms, "uninject", wd.host_asn, wd.site_id, None)
        inj_by_key = {(inj.host_asn, inj.site_id): inj for inj in injections}

        messages = 0
        last_time = 0.0
        events = 0
        heappop = heapq.heappop
        heappush = heapq.heappush
        next_seq = counter.__next__
        jitter_get = jitter.get
        while heap:
            time_ms, _, kind, receiver, sender, as_path, med = heappop(heap)
            events += 1
            if events > budget:
                # The census scan is failure-path-only, so the hot loop
                # does not pay for touched-AS bookkeeping in this mode.
                touched = sum(
                    1
                    for sp in speakers.values()
                    if sp.state.adj_rib_in
                    or sp.state.advertised_to
                    or sp.state.best is not None
                )
                logger.error(
                    "BGP event budget exhausted",
                    extra={"fields": {
                        "events": events,
                        "budget": budget,
                        "messages": messages,
                        "ases_touched": touched,
                        "virtual_time_ms": time_ms,
                    }},
                )
                raise ConvergenceBudgetError(budget, events, touched, time_ms)
            # The heap pops in nondecreasing time order, so the last
            # event's timestamp is the convergence time.
            last_time = time_ms
            speaker = speakers[receiver]
            if kind == "announce":
                messages += 1
                out = speaker.receive_announcement(sender, as_path, med, time_ms)
            elif kind == "withdraw":
                messages += 1
                out = speaker.receive_withdrawal(sender)
            elif kind == "inject":
                inj = inj_by_key[(receiver, sender)]
                out = speaker.inject(
                    self.origin_asn,
                    inj.rel_from_host,
                    SitePop(inj.site_id, inj.pop_id, inj.link_rtt_ms),
                    time_ms,
                    prepend=inj.prepend,
                    poison=inj.poison,
                )
            elif kind == "uninject":
                out = speaker.withdraw_injection(self.origin_asn, sender)
            else:  # pragma: no cover - defensive
                raise ReproError(f"unknown event kind {kind!r}")

            if prop_delay is not None:
                for update in out:
                    neighbor = update.neighbor
                    pair = (receiver, neighbor)
                    arrive = time_ms + prop_delay[pair] + jitter_get(pair, 0.0)
                    path = update.as_path
                    if path is None:
                        heappush(heap, (arrive, next_seq(), "withdraw", neighbor, receiver, None, 0))
                    else:
                        heappush(heap, (arrive, next_seq(), "announce", neighbor, receiver, path, update.med))
            else:
                for update in out:
                    link = graph.link(receiver, update.neighbor)
                    arrive = time_ms + link.prop_delay_ms + jitter.get(
                        (receiver, update.neighbor), 0.0
                    )
                    if update.as_path is None:
                        schedule(arrive, "withdraw", update.neighbor, receiver, None)
                    else:
                        schedule(arrive, "announce", update.neighbor, receiver, update.as_path, update.med)

        if self.reuse_state:
            states = self._detach_states(speakers)
            self._release_speakers(speakers, tables)
        else:
            states = {asn: sp.state for asn, sp in speakers.items()}
        return states, last_time, messages, events
