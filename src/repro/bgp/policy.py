"""Gao-Rexford import and export policies.

Import: local preference is assigned by the business relationship of
the announcing neighbor — customer routes are the most profitable, then
peer routes, then provider routes (paper S4.1).  Policy-deviant ASes
override this with arbitrary per-neighbor preferences, which is the
mechanism behind the cyclic-preference example of paper Figure 3.

Export: a route learned from a customer is exported to every neighbor;
a route learned from a peer or a provider is exported to customers
only.  This yields valley-free paths.
"""

from typing import List

from repro.topology.astopo import AS, ASGraph, Relationship

LOCAL_PREF_CUSTOMER = 300
LOCAL_PREF_PEER = 200
LOCAL_PREF_PROVIDER = 100

_REL_PREF = {
    Relationship.CUSTOMER: LOCAL_PREF_CUSTOMER,
    Relationship.PEER: LOCAL_PREF_PEER,
    Relationship.PROVIDER: LOCAL_PREF_PROVIDER,
}


def local_pref_for(node: AS, neighbor_asn: int, rel: Relationship) -> int:
    """Local preference ``node`` assigns to a route from ``neighbor_asn``.

    A policy-deviant AS consults its per-neighbor override table first
    and falls back to the relationship-based default for neighbors it
    has no opinion about (e.g. a pseudo-neighbor anycast origin).
    """
    if node.policy_deviant:
        override = node.deviant_prefs.get(neighbor_asn)
        if override is not None:
            return override
    return _REL_PREF[rel]


def export_targets(graph: ASGraph, asn: int, learned_rel: Relationship, learned_from: int) -> List[int]:
    """Neighbors to which ``asn`` exports a route learned via
    ``learned_rel`` from ``learned_from``.

    Customer routes go to everyone (minus the neighbor they came
    from); peer and provider routes go to customers only.
    """
    if learned_rel is Relationship.CUSTOMER:
        targets = graph.neighbors(asn)
    else:
        targets = graph.customers(asn)
    return [n for n in targets if n != learned_from]
