"""Delta convergence: internet-scale runs that only pay for the wavefront.

A campaign runs thousands of experiments over one topology, and each
experiment differs only in which sites announce.  The full engine path
still pays three per-run costs proportional to the whole topology: a
speaker-pool overlay sweep, a detach scan over every AS, and one heap
event per delivered update — including the huge majority delivered to
stub ASes that can never say anything back.

This module removes all three, bit-identically:

- **Touched-AS tracking / copy-on-restore**: the per-topology base
  state is the empty RIB (only the anycast prefix exists), so a run's
  announce/withdraw wavefront *is* the set of events.  The converger
  records which ASes the wavefront reached and, between runs, restores
  exactly those — checkout, detach, and release are all O(touched),
  not O(|ASes|).

- **Stub aggregation**: a *pure stub* — an AS every one of whose BGP
  sessions is with a provider — exports nothing, ever: a provider- or
  peer-learned route exports to customers only, and it has none.  (Its
  own injections are the one exception; see below.)  Removing such an
  AS from the event heap therefore cannot perturb any other AS, single-
  or multi-homed alike.  Aggregated stubs are pruned from their
  providers' export bases entirely, so the simulated core is just the
  transit hierarchy.  What a provider *would* have sent them is
  reconstructed from the provider's **export episodes**: a provider
  sends the same update to every (non-poisoned) stub customer exactly
  when its best route materially changes to a new export path, so
  recording ``(virtual time, export path)`` per change captures every
  stub-bound message without enumerating the stubs.  Stub states are
  synthesized lazily from the episode log on first read
  (:class:`LazyStates`), and message/event counts and the convergence
  timestamp are reconstructed from episode arithmetic, so metrics and
  traces match the full path too.

Bit-identity argument for the event order: removing a heap entry that
generates no further events preserves the relative order of all
remaining entries (the tie-breaking sequence numbers are monotonic in
push order, and a subsequence keeps its order), so every live AS sees
the exact event sequence the full path delivers.  A provider never
sends consecutive duplicates to one neighbor (``advertised_to`` dedup)
and link delay plus per-run jitter are constant per directed pair, so
deliveries to a stub arrive in send order and the episode replay
reproduces exactly the deliveries the full path makes.  Poisoned
episodes (an aggregated stub spliced into the announced path, which
the real export loop skips for that stub) mark the provider
*complicated* and fall back to an exact per-stub replay of its episode
list — the same dedup rules, applied stub by stub.

An injection or withdrawal hosted *at* a normally-aggregated stub
un-aggregates that AS for the run (it gets an ephemeral live speaker
and its providers get a run-local export base that re-admits it): an
injecting stub does export — toward its providers — so it must sit on
the heap like any other AS.
"""

import heapq
import itertools
import threading
from typing import Dict, List, Optional, Tuple

try:  # pragma: no cover - exercised implicitly on import
    from collections.abc import Mapping
except ImportError:  # pragma: no cover
    from collections import Mapping

from repro.bgp.decision import evaluate
from repro.bgp.messages import Route, SitePop, make_route
from repro.bgp.rib import RouterState
from repro.bgp.router import BGPSpeaker
from repro.topology.astopo import Relationship
from repro.util.errors import ConvergenceBudgetError, ReproError


class _PrunedTables:
    """Core speakers' view of the topology tables: identical session
    imports, export bases with the aggregated stubs removed.  Pruning
    preserves the base's sorted order (a subsequence of a sorted tuple),
    so the surviving exports are emitted in exactly the full path's
    relative order."""

    __slots__ = ("session_import", "export_all", "export_customers")

    def __init__(self, session_import, export_all, export_customers):
        self.session_import = session_import
        self.export_all = export_all
        self.export_customers = export_customers

    def export_targets(self, asn: int, learned_rel) -> Tuple[int, ...]:
        if learned_rel is Relationship.CUSTOMER:
            return self.export_all[asn]
        return self.export_customers[asn]


class _RunExport:
    """A per-run export-base override for one provider of a live stub:
    prunes only the stubs aggregated *this run*, so the live stub gets
    real heap deliveries while its siblings stay aggregated."""

    __slots__ = ("session_import", "_all", "_customers")

    def __init__(self, session_import, all_targets, customer_targets):
        self.session_import = session_import
        self._all = all_targets
        self._customers = customer_targets

    def export_targets(self, asn: int, learned_rel) -> Tuple[int, ...]:
        if learned_rel is Relationship.CUSTOMER:
            return self._all
        return self._customers


def _final_delivery(episodes, stub):
    """The last update actually delivered to ``stub`` by a provider
    with episode list ``episodes``: forward replay with the export
    loop's own filters.  A poisoned episode (the stub inside the new
    path) withdraws a previously advertised route — the export loop's
    stale-target branch — and otherwise delivers nothing; an episode
    matching the advertised path is deduplicated; a None episode
    withdraws only when something is advertised.  Returns ``(time_ms,
    path)`` with ``path`` None when the stub ends route-less."""
    last_t = 0.0
    advertised = None
    for t, path in episodes:
        if path is None or stub in path:
            if advertised is not None:
                last_t, advertised = t, None
        elif path == advertised:
            continue
        else:
            last_t, advertised = t, path
    return last_t, advertised


class LazyStates(Mapping):
    """A per-AS state mapping that synthesizes aggregated-stub states
    on first read.

    Behaves exactly like the ``Dict[int, RouterState]`` the engine's
    other paths return: same keys (every AS in the topology), same
    values (by ``==``).  Internally it holds only the states the run
    actually materialized; untouched ASes resolve to the shared
    pristine state, aggregated stubs are built from their providers'
    episode logs on demand (then cached), and a touched provider's
    ``advertised_to`` entries for its aggregated stubs are patched in
    on first access.  Pickling materializes to a plain dict, so
    persisted convergence-store entries are engine-mode agnostic.
    """

    __slots__ = ("_materialized", "_pristine", "_aggregated", "_synth", "_pending", "_patch")

    def __init__(self, materialized, pristine, aggregated, synth, pending, patch):
        self._materialized: Dict[int, RouterState] = materialized
        self._pristine: Dict[int, RouterState] = pristine
        self._aggregated = aggregated
        self._synth = synth
        #: Providers whose advertised_to still lacks its stub entries.
        self._pending = pending
        self._patch = patch

    def __getitem__(self, asn: int) -> RouterState:
        state = self._materialized.get(asn)
        if state is not None:
            if asn in self._pending:
                self._pending.discard(asn)
                self._patch(asn, state)
            return state
        if asn in self._aggregated:
            state = self._synth(asn)
            self._materialized[asn] = state
            return state
        return self._pristine[asn]

    def __iter__(self):
        return iter(self._pristine)

    def __len__(self) -> int:
        return len(self._pristine)

    def __eq__(self, other):
        if not isinstance(other, (Mapping, dict)):
            return NotImplemented
        if len(self) != len(other):
            return False
        getter = other.get
        missing = object()
        for asn in self._pristine:
            if getter(asn, missing) != self[asn]:
                return False
        return True

    def __ne__(self, other):
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    __hash__ = None

    def live_items(self):
        """Items the run materialized so far (touched live ASes, plus
        any stub states already synthesized).  Provider states reached
        this way may still have their stub ``advertised_to`` patches
        pending; use ``states[asn]`` for the fully-patched view."""
        return self._materialized.items()

    def __reduce__(self):
        return (dict, ({asn: self[asn] for asn in self._pristine},))


class DeltaConverger:
    """The delta-mode convergence core of one :class:`BGPEngine`.

    Owns a pool of *core* speaker sets (every AS except the aggregated
    stubs) plus the shared pristine states, both keyed to the graph's
    current :class:`~repro.topology.precompute.TopologyTables`.  Safe
    to share across executor threads: each run checks out its own
    speaker set, exactly like the engine's full path.
    """

    def __init__(self, engine):
        self.engine = engine
        self._lock = threading.Lock()
        self._pool: List[Dict[int, BGPSpeaker]] = []
        self._pool_tables = None
        self._pristine: Dict[int, RouterState] = {}
        self._aggregated: frozenset = frozenset()
        self._pruned: Optional[_PrunedTables] = None
        #: provider ASN -> sorted tuple of its aggregated stub customers
        self._parents: Dict[int, Tuple[int, ...]] = {}
        self._parent_stubset: Dict[int, frozenset] = {}
        #: provider ASN -> max one-way delay to any of its stubs (the
        #: jitter-free fast path for the convergence timestamp).
        self._parent_maxdelay: Dict[int, float] = {}
        #: Diagnostics of the most recent completed run (serial use
        #: only — concurrent runs overwrite each other's entry).
        self.last_run_stats: Dict[str, float] = {}

    # -- per-topology state ---------------------------------------------

    def _rebuild(self, tables):
        """Recompute aggregation structures for a new tables revision.
        Caller holds the lock."""
        graph = self.engine.internet.graph
        self._pool = []
        self._pool_tables = tables
        self._pristine = {asn: RouterState(asn) for asn in graph.asns()}
        aggregated = (
            frozenset(tables.stub_providers)
            if self.engine.aggregate_stubs
            else frozenset()
        )
        self._aggregated = aggregated
        parents: Dict[int, List[int]] = {}
        for stub in aggregated:
            for provider in tables.stub_providers[stub]:
                parents.setdefault(provider, []).append(stub)
        self._parents = {p: tuple(sorted(s)) for p, s in parents.items()}
        self._parent_stubset = {p: frozenset(s) for p, s in self._parents.items()}
        prop_delay = tables.prop_delay
        self._parent_maxdelay = {
            p: max(prop_delay[(p, s)] for s in stubs)
            for p, stubs in self._parents.items()
        }
        if aggregated:
            export_all = {
                asn: tuple(t for t in targets if t not in aggregated)
                for asn, targets in tables.export_all.items()
                if asn not in aggregated
            }
            export_customers = {
                asn: tuple(t for t in targets if t not in aggregated)
                for asn, targets in tables.export_customers.items()
                if asn not in aggregated
            }
            self._pruned = _PrunedTables(
                tables.session_import, export_all, export_customers
            )
        else:
            self._pruned = None

    def _checkout(self, tables, igp_overlay):
        graph = self.engine.internet.graph
        with self._lock:
            if self._pool_tables is not tables:
                self._rebuild(tables)
            speakers = self._pool.pop() if self._pool else None
        aggregated = self._aggregated
        if speakers is None:
            prefix = self.engine.prefix
            speaker_tables = self._pruned if self._pruned is not None else tables
            speakers = {
                asn: BGPSpeaker(
                    graph, graph.as_of(asn), prefix, igp_overlay, tables=speaker_tables
                )
                for asn in graph.asns()
                if asn not in aggregated
            }
        else:
            overlay = igp_overlay or {}
            for sp in speakers.values():
                sp.igp_overlay = overlay
        return speakers, aggregated

    def _release(self, speakers, tables):
        with self._lock:
            if self._pool_tables is tables:
                self._pool.append(speakers)

    # -- one run ----------------------------------------------------------

    def converge(
        self,
        injections,
        igp_overlay,
        delay_jitter_ms,
        jitter: Dict[Tuple[int, int], float],
        withdrawals,
        budget: int,
    ):
        """Run one convergence; returns ``(states, last_time, messages,
        events)`` with ``states`` a :class:`LazyStates`.

        ``jitter`` is the per-run delay jitter the engine already drew
        (the RNG stream iterates the full link list, so drawing it in
        one place keeps every mode on the same stream).
        """
        engine = self.engine
        graph = engine.internet.graph
        tables = graph.tables()
        speakers, aggregated = self._checkout(tables, igp_overlay)
        prop_delay = tables.prop_delay
        jitter_get = jitter.get

        # An AS hosting an injection or withdrawal must be live even if
        # it would normally aggregate: it exports toward its providers.
        hosts = {inj.host_asn for inj in injections}
        hosts.update(wd.host_asn for wd in withdrawals)
        extra: Dict[int, BGPSpeaker] = {}
        agg = aggregated
        live_stubs = hosts & aggregated
        patched: List[Tuple[BGPSpeaker, object]] = []
        #: Per-run override of a provider's aggregated-stub list when
        #: some of its stubs are live this run.
        stubs_run: Dict[int, Tuple[int, ...]] = {}
        if live_stubs:
            agg = aggregated - live_stubs
            prefix = engine.prefix
            extra = {
                asn: BGPSpeaker(
                    graph, graph.as_of(asn), prefix, igp_overlay, tables=tables
                )
                for asn in live_stubs
            }
            affected: Dict[int, set] = {}
            for stub in live_stubs:
                for provider in tables.stub_providers[stub]:
                    affected.setdefault(provider, set()).add(stub)
            for provider, live_of in affected.items():
                spk = speakers[provider]
                run_tables = _RunExport(
                    tables.session_import,
                    tuple(t for t in tables.export_all[provider] if t not in agg),
                    tuple(t for t in tables.export_customers[provider] if t not in agg),
                )
                patched.append((spk, spk._tables))
                spk._tables = run_tables
                stubs_run[provider] = tuple(
                    s for s in self._parents.get(provider, ()) if s not in live_of
                )

        counter = itertools.count()
        next_seq = counter.__next__
        heap: List[Tuple[float, int, str, int, int, Optional[Tuple[int, ...]], int]] = []
        for inj in injections:
            heapq.heappush(
                heap,
                (inj.announce_time_ms, next_seq(), "inject", inj.host_asn, inj.site_id, None, 0),
            )
        for wd in withdrawals:
            heapq.heappush(
                heap,
                (wd.withdraw_time_ms, next_seq(), "uninject", wd.host_asn, wd.site_id, None, 0),
            )
        inj_by_key = {(inj.host_asn, inj.site_id): inj for inj in injections}

        # ep_log holds, per provider, the export episodes (time, export
        # path or None) its aggregated stubs would have received;
        # `complicated` flags providers with a stub spliced into an
        # episode's path (BGP poisoning), which forces per-stub replay.
        ep_log: Dict[int, List[Tuple[float, Optional[Tuple[int, ...]]]]] = {}
        complicated = set()
        agg_est = 0  # running upper bound on aggregated deliveries
        parents_get = self._parents.get
        stubs_run_get = stubs_run.get
        stubset = self._parent_stubset
        touched = set()
        touched_add = touched.add
        messages = 0
        last_time = 0.0
        events = 0
        origin_asn = engine.origin_asn
        heappop = heapq.heappop
        heappush = heapq.heappush
        while heap:
            time_ms, _, kind, receiver, sender, as_path, med = heappop(heap)
            events += 1
            if events + agg_est > budget:
                raise ConvergenceBudgetError(
                    budget, events + agg_est, len(touched), time_ms
                )
            last_time = time_ms
            touched_add(receiver)
            speaker = speakers.get(receiver)
            if speaker is None:
                speaker = extra[receiver]
            old_best = speaker.state.best
            if kind == "announce":
                messages += 1
                out = speaker.receive_announcement(sender, as_path, med, time_ms)
            elif kind == "withdraw":
                messages += 1
                out = speaker.receive_withdrawal(sender)
            elif kind == "inject":
                inj = inj_by_key[(receiver, sender)]
                out = speaker.inject(
                    origin_asn,
                    inj.rel_from_host,
                    SitePop(inj.site_id, inj.pop_id, inj.link_rtt_ms),
                    time_ms,
                    prepend=inj.prepend,
                    poison=inj.poison,
                )
            elif kind == "uninject":
                out = speaker.withdraw_injection(origin_asn, sender)
            else:  # pragma: no cover - defensive
                raise ReproError(f"unknown event kind {kind!r}")

            stubs_p = parents_get(receiver)
            if stubs_p is not None:
                # Export-episode detection: mirror _export_updates for
                # the pruned stub targets.  An episode happens exactly
                # when the best route materially changes to a new
                # export path (or is withdrawn while stubs hold one).
                new_best = speaker.state.best
                if new_best is not old_best:
                    run_stubs = stubs_run_get(receiver, stubs_p)
                    if run_stubs:
                        eps = ep_log.get(receiver)
                        if new_best is None:
                            if eps and eps[-1][1] is not None:
                                eps.append((time_ms, None))
                                agg_est += len(run_stubs)
                        elif not (
                            old_best is not None
                            and new_best.as_path == old_best.as_path
                            and new_best.learned_from == old_best.learned_from
                            and new_best.med == old_best.med
                            and new_best.origin_code == old_best.origin_code
                        ):
                            export_path = (receiver,) + new_best.as_path
                            if eps is None:
                                ep_log[receiver] = eps = []
                            if not eps or eps[-1][1] != export_path:
                                eps.append((time_ms, export_path))
                                agg_est += len(run_stubs)
                                if not stubset[receiver].isdisjoint(export_path):
                                    complicated.add(receiver)

            for update in out:
                neighbor = update.neighbor
                pair = (receiver, neighbor)
                arrive = time_ms + prop_delay[pair] + jitter_get(pair, 0.0)
                path = update.as_path
                if path is None:
                    heappush(heap, (arrive, next_seq(), "withdraw", neighbor, receiver, None, 0))
                else:
                    heappush(heap, (arrive, next_seq(), "announce", neighbor, receiver, path, update.med))

        for spk, orig in patched:
            spk._tables = orig

        # -- aggregated-delivery accounting -------------------------------
        # Exact counts and the last aggregated arrival, from episode
        # arithmetic (per-stub replay only for complicated providers).
        agg_count = 0
        agg_last = 0.0
        parents = self._parents
        maxdelay = self._parent_maxdelay
        jittered = bool(jitter)
        for provider, eps in ep_log.items():
            stubs = stubs_run_get(provider)
            full_set = stubs is None
            if full_set:
                stubs = parents[provider]
            if not stubs:
                continue
            if provider in complicated:
                # Arrivals are computed as (episode time + delay) +
                # jitter, matching the engine's push expression term
                # for term so the convergence timestamp is bit-equal.
                for stub in stubs:
                    pair = (provider, stub)
                    prop = prop_delay[pair]
                    jit = jitter_get(pair, 0.0)
                    advertised = None
                    for t, path in eps:
                        if path is None or stub in path:
                            if advertised is not None:
                                agg_count += 1
                                arrive = t + prop + jit
                                if arrive > agg_last:
                                    agg_last = arrive
                                advertised = None
                        elif path == advertised:
                            continue
                        else:
                            agg_count += 1
                            arrive = t + prop + jit
                            if arrive > agg_last:
                                agg_last = arrive
                            advertised = path
            else:
                agg_count += len(eps) * len(stubs)
                t_last = eps[-1][0]
                if jittered:
                    arrive = max(
                        t_last + prop_delay[(provider, s)] + jitter_get((provider, s), 0.0)
                        for s in stubs
                    )
                else:
                    # Float addition is monotone, so adding the max
                    # delay equals the max of the per-stub sums.
                    reach = maxdelay[provider] if full_set else max(
                        prop_delay[(provider, s)] for s in stubs
                    )
                    arrive = t_last + reach
                if arrive > agg_last:
                    agg_last = arrive

        # -- detach touched states (copy-on-restore) ----------------------
        materialized: Dict[int, RouterState] = {}
        pristine = self._pristine
        for asn in touched:
            sp = speakers.get(asn)
            if sp is None:
                sp = extra[asn]
            st = sp.state
            if st.adj_rib_in or st.advertised_to or st.best is not None or st.multipath:
                materialized[asn] = st
                sp.state = RouterState(asn)
            else:
                materialized[asn] = pristine[asn]
        self._release(speakers, tables)

        states = LazyStates(
            materialized,
            pristine,
            agg,
            self._make_synth(tables, igp_overlay, pristine, ep_log, complicated, jitter),
            set(ep_log),
            self._make_patch(tables, ep_log, complicated, stubs_run),
        )
        last_time = max(last_time, agg_last)
        messages += agg_count
        events += agg_count
        self.last_run_stats = {
            "touched": len(touched),
            "aggregated": len(aggregated),
            "agg_messages": agg_count,
            "events": events,
        }
        return states, last_time, messages, events

    def _make_synth(self, tables, igp_overlay, pristine, ep_log, complicated, jitter):
        """The stub-state synthesizer for one run's :class:`LazyStates`.

        Mirrors ``BGPSpeaker.receive_announcement``'s tables path per
        provider session and the speaker's decision step over the
        result: same import values, same route constructor, same
        decision, so the synthesized state is ``==`` to the one the
        full path builds by simulation.
        """
        session_import = tables.session_import
        stub_providers = tables.stub_providers
        prop_delay = tables.prop_delay
        overlay = igp_overlay or {}
        jitter_get = jitter.get
        prefix = self.engine.prefix
        graph = self.engine.internet.graph
        ep_get = ep_log.get

        def synth(stub: int) -> RouterState:
            adj: Dict[int, Route] = {}
            for provider in stub_providers[stub]:
                eps = ep_get(provider)
                if not eps:
                    continue
                if provider in complicated:
                    t, path = _final_delivery(eps, stub)
                else:
                    t, path = eps[-1]
                if path is None:
                    continue
                session = (stub, provider)
                local_pref, interior, rel = session_import[session]
                session_interior = overlay.get(session)
                if session_interior is not None:
                    interior = session_interior
                pair = (provider, stub)
                arrive = t + prop_delay[pair] + jitter_get(pair, 0.0)
                adj[provider] = make_route(
                    prefix, path, provider, local_pref, rel, 0, interior, arrive
                )
            if not adj:
                return pristine[stub]
            state = RouterState(stub)
            state.adj_rib_in = adj
            routes = list(adj.values())
            if len(routes) == 1:
                best = routes[0]
                multipath = routes
            else:
                best, multipath = evaluate(routes, graph.as_of(stub))
            state.best = best
            state.multipath = multipath
            return state

        return synth

    def _make_patch(self, tables, ep_log, complicated, stubs_run):
        """The provider ``advertised_to`` patcher: re-adds the entries
        the pruned export base never wrote, value-equal to the routes
        the full path's export loop shares across its targets."""
        parents = self._parents
        stubs_run_get = stubs_run.get
        prefix = self.engine.prefix

        def patch(provider: int, state: RouterState) -> None:
            eps = ep_log.get(provider)
            if not eps:
                return
            stubs = stubs_run_get(provider)
            if stubs is None:
                stubs = parents[provider]
            advertised = state.advertised_to
            if provider in complicated:
                shared: Dict[Tuple[int, ...], Route] = {}
                for stub in stubs:
                    _t, path = _final_delivery(eps, stub)
                    if path is None:
                        continue
                    route = shared.get(path)
                    if route is None:
                        route = make_route(prefix, path, provider, 0)
                        shared[path] = route
                    advertised[stub] = route
            else:
                _t, path = eps[-1]
                if path is None:
                    return
                route = make_route(prefix, path, provider, 0)
                for stub in stubs:
                    advertised[stub] = route

        return patch
