"""Route and update representations.

A :class:`Route` is a RIB entry as seen by one AS: the AS path toward
the anycast origin, the neighbor it was learned from, the local
preference assigned on import, and the arrival timestamp that feeds the
arrival-order tie-break.  ``site_pops`` is only populated on *injected*
routes (at ASes directly connected to anycast sites); it disappears on
re-advertisement, modeling the paper's observation that site-level
differences cannot be observed once a neighboring AS re-advertises the
prefix (S4.3).
"""

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.topology.astopo import Relationship
from repro.util.errors import ReproError


@dataclass(frozen=True)
class SitePop:
    """An anycast site attachment carried on an injected route.

    Attributes:
        site_id: the anycast site's identifier.
        pop_id: the PoP inside the hosting AS where the site attaches,
            or None for single-PoP hosts (e.g. stub peers).
        link_rtt_ms: data-plane RTT across the site's access link.
    """

    site_id: int
    pop_id: Optional[int]
    link_rtt_ms: float


@dataclass(frozen=True)
class Route:
    """One RIB entry for the anycast prefix at one AS.

    ``as_path`` is nearest-first: ``as_path[0]`` is the neighbor AS the
    route was learned from (equal to ``learned_from`` for propagated
    routes) and ``as_path[-1]`` is the anycast origin AS.
    """

    prefix: str
    as_path: Tuple[int, ...]
    learned_from: int
    local_pref: int
    learned_rel: Relationship = Relationship.PROVIDER
    med: int = 0
    origin_code: int = 0
    interior_cost: int = 0
    arrival_time: float = 0.0
    site_pops: Tuple[SitePop, ...] = field(default=())

    def __post_init__(self):
        if not self.as_path:
            raise ReproError("Route.as_path must not be empty")

    @property
    def path_length(self) -> int:
        """AS-path length, BGP's second decision criterion."""
        return len(self.as_path)

    @property
    def origin_asn(self) -> int:
        """The AS that originated the prefix."""
        return self.as_path[-1]

    def is_injected(self) -> bool:
        """True when this AS hosts the anycast site(s) directly."""
        return bool(self.site_pops)

    def materially_equal(self, other: Optional["Route"]) -> bool:
        """True when re-advertising would be a no-op for neighbors.

        Arrival time and local preference are local concerns; a route
        only needs re-announcement when its path, MED, or learned-from
        neighbor changed.
        """
        if other is None:
            return False
        return (
            self.as_path == other.as_path
            and self.learned_from == other.learned_from
            and self.med == other.med
            and self.origin_code == other.origin_code
        )


def make_route(
    prefix: str,
    as_path: Tuple[int, ...],
    learned_from: int,
    local_pref: int,
    learned_rel: Relationship = Relationship.PROVIDER,
    med: int = 0,
    interior_cost: int = 0,
    arrival_time: float = 0.0,
) -> Route:
    """Hot-path :class:`Route` constructor.

    Value-identical to calling ``Route(...)`` (same validation, equal
    and equally hashable results) but bypasses the frozen-dataclass
    ``__init__``/``object.__setattr__`` machinery, which costs ~4x as
    much; speakers create one route per delivered announcement, making
    this one of the largest fixed costs in the convergence loop.
    ``origin_code`` and ``site_pops`` keep their defaults: propagated
    routes never carry site attachments.
    """
    if not as_path:
        raise ReproError("Route.as_path must not be empty")
    route = Route.__new__(Route)
    d = route.__dict__
    d["prefix"] = prefix
    d["as_path"] = as_path
    d["learned_from"] = learned_from
    d["local_pref"] = local_pref
    d["learned_rel"] = learned_rel
    d["med"] = med
    d["origin_code"] = 0
    d["interior_cost"] = interior_cost
    d["arrival_time"] = arrival_time
    d["site_pops"] = ()
    return route
