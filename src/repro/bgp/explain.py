"""Human-readable explanations of catchment decisions.

``explain_catchment`` retraces a client flow hop by hop through a
converged control plane and narrates, at each AS, which candidate
routes existed and which decision-process step picked the winner —
the operator-facing "why did this client end up in Tokyo?" tool.
"""

from typing import List

from repro.bgp.dataplane import DataPlane
from repro.bgp.engine import ConvergedState
from repro.bgp.messages import Route
from repro.topology.astopo import AS
from repro.topology.generator import Internet
from repro.util.errors import ReproError


def _winning_step(chosen: Route, loser: Route, node: AS) -> str:
    """The first decision-process criterion separating two routes."""
    if chosen.local_pref != loser.local_pref:
        return (
            f"local preference ({chosen.local_pref} vs {loser.local_pref})"
        )
    if chosen.path_length != loser.path_length:
        return (
            f"AS-path length ({chosen.path_length} vs {loser.path_length})"
        )
    if chosen.origin_code != loser.origin_code:
        return "origin code"
    if chosen.med != loser.med:
        return f"MED ({chosen.med} vs {loser.med})"
    if chosen.interior_cost != loser.interior_cost:
        return (
            f"interior cost ({chosen.interior_cost} vs {loser.interior_cost})"
        )
    if node.arrival_order_tiebreak and chosen.arrival_time != loser.arrival_time:
        return (
            "arrival order (received at "
            f"t={chosen.arrival_time:.0f}ms vs t={loser.arrival_time:.0f}ms)"
        )
    return f"neighbor id ({chosen.learned_from} vs {loser.learned_from})"


def _describe_hop(asn: int, state, node: AS, chosen: Route) -> str:
    candidates = [r for r in state.routes() if r is not chosen]
    path = "-".join(map(str, chosen.as_path))
    if not candidates:
        return f"AS {asn}: only route is via AS {chosen.learned_from} [{path}]"
    closest = min(
        candidates,
        key=lambda r: (
            -r.local_pref, r.path_length, r.origin_code, r.med, r.interior_cost
        ),
    )
    step = _winning_step(chosen, closest, node)
    extra = f" ({len(candidates)} alternatives)" if len(candidates) > 1 else ""
    return (
        f"AS {asn}: chose route via AS {chosen.learned_from} [{path}] over "
        f"AS {closest.learned_from}'s — decided by {step}{extra}"
    )


def explain_catchment(
    internet: Internet,
    converged: ConvergedState,
    client_asn: int,
    flow_key=None,
    flow_nonce: int = 0,
) -> str:
    """Narrate the hop-by-hop route decisions of one client flow.

    Returns a multi-line string; raises :class:`ReproError` when the
    client has no route at all.
    """
    dataplane = DataPlane(internet, converged, flow_nonce=flow_nonce)
    key = flow_key if flow_key is not None else client_asn
    outcome = dataplane.forward(client_asn, key)
    if outcome is None:
        raise ReproError(f"AS {client_asn} has no route to the anycast prefix")

    lines: List[str] = [
        f"flow from AS {client_asn} reaches site {outcome.site_id} "
        f"(hosted by AS {outcome.terminating_asn}) in {outcome.rtt_ms:.1f} ms"
    ]
    for asn in outcome.as_path:
        state = converged.states[asn]
        node = internet.graph.as_of(asn)
        chosen = dataplane._choose_route(asn, key, state)
        if node.multipath and len(state.multipath) > 1:
            lines.append(
                f"AS {asn}: multipath across {len(state.multipath)} equal "
                f"routes; this flow hashed to AS {chosen.learned_from}"
            )
        else:
            lines.append(_describe_hop(asn, state, node, chosen))
        if chosen.is_injected():
            sites = ", ".join(str(sp.site_id) for sp in chosen.site_pops)
            if outcome.ingress_pop is not None and len(chosen.site_pops) > 1:
                lines.append(
                    f"AS {asn}: hosts sites [{sites}]; hot-potato from ingress "
                    f"PoP {outcome.ingress_pop} selects site {outcome.site_id}"
                )
            else:
                lines.append(f"AS {asn}: delivers to site {outcome.site_id}")
    return "\n".join(lines)
