"""Data-plane resolution: from a client AS to its anycast site.

Given a converged control plane, this module walks a flow hop by hop —
each AS forwards toward the ``learned_from`` neighbor of its chosen
route, multipath ASes hash the flow over their tied set — until it
reaches an AS holding an *injected* route.  There, hot-potato (IGP
shortest path from the ingress PoP) picks the concrete anycast site,
mirroring the paper's two-level structure: BGP decides the inter-AS
catchment, interior routing decides the intra-AS catchment (S4.3).

The walk also accumulates the path RTT: inter-AS link RTTs, intra-AS
backbone traversal for multi-PoP transits, and the site access link.
"""

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.bgp.engine import ConvergedState
from repro.bgp.messages import Route
from repro.topology.generator import Internet
from repro.util.rng import stable_hash


@dataclass(frozen=True)
class ForwardingOutcome:
    """Where a client flow ends up and what it costs.

    Attributes:
        site_id: the anycast site that receives the flow.
        terminating_asn: the AS hosting that site's announcement.
        as_path: ASes traversed, client first, terminating AS last.
        rtt_ms: round-trip latency from the client AS border to the
            site (the client's last-mile is added by the measurement
            layer).
        ingress_pop: PoP at which the flow entered the terminating AS,
            or None for single-PoP hosts.
    """

    site_id: int
    terminating_asn: int
    as_path: Tuple[int, ...]
    rtt_ms: float
    ingress_pop: Optional[int]


class DataPlane:
    """Resolves client flows against one converged control plane.

    ``flow_nonce`` seeds the per-flow ECMP hash of multipath ASes; two
    data planes built over the same converged state but with different
    nonces can map the same flow differently, which models the ECMP
    rehashing that breaks preference consistency in the paper's
    measurements (S4.2, "Multi-path routing").
    """

    def __init__(self, internet: Internet, converged: ConvergedState, flow_nonce: int = 0):
        self.internet = internet
        self.converged = converged
        self.flow_nonce = flow_nonce

    def forward(self, client_asn: int, flow_key) -> Optional[ForwardingOutcome]:
        """Trace one flow; returns None when the client has no route
        (e.g. a peers-only configuration that cannot reach it)."""
        graph = self.internet.graph
        cur = client_asn
        prev: Optional[int] = None
        rtt = 0.0
        hops = [cur]
        visited = {cur}
        while True:
            state = self.converged.states.get(cur)
            if state is None or state.best is None:
                return None
            route = self._choose_route(cur, flow_key, state)
            if route.is_injected():
                return self._terminate(cur, prev, route, rtt, tuple(hops))
            nxt = route.learned_from
            if nxt in visited:
                # A forwarding loop across inconsistent multipath
                # choices; the flow is effectively blackholed.
                return None
            rtt += self._transit_cost(prev, cur, nxt)
            rtt += graph.link(cur, nxt).rtt_ms
            prev, cur = cur, nxt
            hops.append(cur)
            visited.add(cur)

    # -- internals ---------------------------------------------------------

    def _choose_route(self, asn: int, flow_key, state) -> Route:
        node = self.internet.graph.as_of(asn)
        if node.multipath and len(state.multipath) > 1:
            idx = stable_hash(flow_key, asn, self.flow_nonce) % len(state.multipath)
            return state.multipath[idx]
        return state.best

    def _transit_cost(self, prev: Optional[int], cur: int, nxt: int) -> float:
        """Intra-AS backbone RTT for crossing a multi-PoP AS."""
        net = self.internet.pop_network(cur)
        if net is None or net.pop_count == 1:
            return 0.0
        exit_pop = self.internet.attach_pop(cur, nxt)
        entry_pop = self._entry_pop(prev, cur, net)
        return net.igp_rtt_ms(entry_pop, exit_pop)

    def _entry_pop(self, prev: Optional[int], cur: int, net) -> int:
        if prev is None:
            # The flow originates inside this AS; it enters the
            # backbone at the PoP nearest the AS's nominal location.
            return net.nearest_pop(self.internet.graph.as_of(cur).location)
        return self.internet.attach_pop(cur, prev)

    def _terminate(
        self,
        cur: int,
        prev: Optional[int],
        route: Route,
        rtt: float,
        hops: Tuple[int, ...],
    ) -> ForwardingOutcome:
        net = self.internet.pop_network(cur)
        candidates = list(route.site_pops)
        if net is not None and net.pop_count > 1 and all(sp.pop_id is not None for sp in candidates):
            ingress = self._entry_pop(prev, cur, net)
            best_pop = net.closest_pop_of(ingress, [sp.pop_id for sp in candidates])
            at_pop = [sp for sp in candidates if sp.pop_id == best_pop]
            chosen = min(at_pop, key=lambda sp: (sp.link_rtt_ms, sp.site_id))
            rtt += net.igp_rtt_ms(ingress, best_pop) + chosen.link_rtt_ms
            return ForwardingOutcome(chosen.site_id, cur, hops, rtt, ingress)
        chosen = min(candidates, key=lambda sp: (sp.link_rtt_ms, sp.site_id))
        ingress = chosen.pop_id
        rtt += chosen.link_rtt_ms
        return ForwardingOutcome(chosen.site_id, cur, hops, rtt, ingress)
