"""Per-AS routing state: Adj-RIB-In, Loc-RIB, and export bookkeeping.

Two representations live here.  :class:`RouterState` is the reference:
one object per AS holding :class:`~repro.bgp.messages.Route` objects,
used by the engine, ``bgp.explain``, and the data plane.
:class:`ColumnarRib` is a struct-of-arrays view of one *converged*
state — numpy columns over the sorted-ASN dense index space of
:class:`~repro.topology.precompute.TopologyTables` — for bulk
consumers (scale benchmarks, catchment sweeps) that would otherwise
walk hundreds of thousands of Python objects.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.bgp.messages import Route
from repro.util.errors import ReproError

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free hosts
    _np = None


@dataclass
class RouterState:
    """The BGP state of one AS for one prefix.

    Attributes:
        asn: the AS this state belongs to.
        adj_rib_in: best-known route per sending neighbor (keyed by
            neighbor ASN; an injected route is keyed by the anycast
            origin ASN).
        best: the Loc-RIB winner, or None.
        multipath: routes tied through the MED step, used by
            multipath-enabled ASes for per-flow load balancing.
        advertised_to: the route last advertised to each neighbor, so
            export-set changes generate the right withdrawals.
    """

    asn: int
    adj_rib_in: Dict[int, Route] = field(default_factory=dict)
    best: Optional[Route] = None
    multipath: List[Route] = field(default_factory=list)
    advertised_to: Dict[int, Route] = field(default_factory=dict)

    def routes(self) -> List[Route]:
        """All candidate routes currently known."""
        return list(self.adj_rib_in.values())

    def has_route(self) -> bool:
        return self.best is not None


class ColumnarRib:
    """Columnar view of one converged state: numpy arrays over the
    sorted-ASN dense index space.

    Column ``i`` describes the best route of ``tables.index_asn[i]``:

    - ``has_route``: bool, whether the AS holds any route;
    - ``best_neighbor``: the ASN the best route was learned from
      (the anycast origin ASN at injection hosts; -1 without a route);
    - ``local_pref`` / ``path_len`` / ``med``: the decision-process
      columns of the best route (0 without a route);
    - ``next_index``: dense index of the next AS toward the anycast
      origin — the AS's own index at injection hosts (terminal), -1
      without a route.  This is what makes whole-topology catchment
      resolution a handful of vectorized pointer jumps
      (:meth:`host_of`) instead of one Python walk per AS.

    The object :class:`RouterState` remains the reference (and the
    representation ``bgp.explain`` and the data plane read); the
    columns are derived from it.  Delta-mode states synthesize
    aggregated stubs lazily on first read, so building the columns
    works identically over a plain dict or a
    :class:`~repro.bgp.delta.LazyStates`.
    """

    __slots__ = (
        "index_asn", "asn_index", "has_route", "best_neighbor",
        "local_pref", "path_len", "med", "next_index",
    )

    def __init__(self, index_asn, asn_index, has_route, best_neighbor,
                 local_pref, path_len, med, next_index):
        self.index_asn = index_asn
        self.asn_index = asn_index
        self.has_route = has_route
        self.best_neighbor = best_neighbor
        self.local_pref = local_pref
        self.path_len = path_len
        self.med = med
        self.next_index = next_index

    @classmethod
    def from_converged(cls, converged, tables) -> "ColumnarRib":
        """Build the columns from a :class:`ConvergedState
        <repro.bgp.engine.ConvergedState>` and its topology tables."""
        if _np is None:
            raise ReproError("ColumnarRib requires numpy, which is not installed")
        index_asn = tables.index_asn
        asn_index = tables.asn_index
        n = len(index_asn)
        has_route = _np.zeros(n, dtype=bool)
        best_neighbor = _np.full(n, -1, dtype=_np.int64)
        local_pref = _np.zeros(n, dtype=_np.int64)
        path_len = _np.zeros(n, dtype=_np.int64)
        med = _np.zeros(n, dtype=_np.int64)
        next_index = _np.full(n, -1, dtype=_np.int64)

        states = converged.states
        for asn, state in states.items():
            best = state.best
            if best is None:
                continue
            i = asn_index[asn]
            has_route[i] = True
            best_neighbor[i] = best.learned_from
            local_pref[i] = best.local_pref
            path_len[i] = len(best.as_path)
            med[i] = best.med
            if best.site_pops or best.learned_from == converged.origin_asn:
                next_index[i] = i  # injection host: the walk terminates here
            else:
                next_index[i] = asn_index[best.learned_from]
        return cls(index_asn, asn_index, has_route, best_neighbor,
                   local_pref, path_len, med, next_index)

    def host_of(self):
        """Per-AS dense index of the injection host its best-route
        chain terminates at (-1 without a route), resolved for every
        AS at once by pointer doubling: each jump squares the distance
        covered, so internet-scale topologies settle in ~log2(path
        length) vectorized passes."""
        nxt = self.next_index.copy()
        for _ in range(64):
            mask = nxt >= 0
            jumped = nxt.copy()
            jumped[mask] = nxt[nxt[mask]]
            # A hop into a routeless AS cannot happen at quiescence;
            # treat it as terminal rather than corrupt the walk.
            bad = mask & (jumped < 0)
            jumped[bad] = nxt[bad]
            if _np.array_equal(jumped, nxt):
                break
            nxt = jumped
        return nxt

    def host_asn_of(self):
        """Like :meth:`host_of` but in ASN space (-1 without a route)."""
        hosts = self.host_of()
        asns = _np.asarray(self.index_asn, dtype=_np.int64)
        out = _np.full(len(hosts), -1, dtype=_np.int64)
        mask = hosts >= 0
        out[mask] = asns[hosts[mask]]
        return out
