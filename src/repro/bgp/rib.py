"""Per-AS routing state: Adj-RIB-In, Loc-RIB, and export bookkeeping."""

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.bgp.messages import Route


@dataclass
class RouterState:
    """The BGP state of one AS for one prefix.

    Attributes:
        asn: the AS this state belongs to.
        adj_rib_in: best-known route per sending neighbor (keyed by
            neighbor ASN; an injected route is keyed by the anycast
            origin ASN).
        best: the Loc-RIB winner, or None.
        multipath: routes tied through the MED step, used by
            multipath-enabled ASes for per-flow load balancing.
        advertised_to: the route last advertised to each neighbor, so
            export-set changes generate the right withdrawals.
    """

    asn: int
    adj_rib_in: Dict[int, Route] = field(default_factory=dict)
    best: Optional[Route] = None
    multipath: List[Route] = field(default_factory=list)
    advertised_to: Dict[int, Route] = field(default_factory=dict)

    def routes(self) -> List[Route]:
        """All candidate routes currently known."""
        return list(self.adj_rib_in.values())

    def has_route(self) -> bool:
        return self.best is not None
