"""Named strategy registry for SPLPO solvers.

``search_configurations`` used to hard-code a string-to-function table,
so adding a solver meant editing :mod:`repro.core.optimizer`.  The
registry inverts that: solvers self-register under a strategy name
(the built-ins do so in :mod:`repro.splpo`'s ``__init__``), and any
package can add its own via :func:`register_solver`.

Registered solvers share one uniform calling convention::

    solver(instance, *, seed=0, sizes=None, max_evaluations=None, **kwargs)

where ``instance`` is an :class:`~repro.splpo.model.SPLPOInstance` and
the return value a :class:`~repro.splpo.model.SolveResult`.  Solvers
are free to ignore the keywords that do not apply to them.
"""

from typing import Callable, Dict, Optional, Tuple

from repro.util.errors import ConfigurationError

#: The uniform solver signature (see module docstring).
SolverFn = Callable[..., object]

_REGISTRY: Dict[str, SolverFn] = {}


def register_solver(name: str, solver: Optional[SolverFn] = None):
    """Register ``solver`` as strategy ``name``.

    Usable directly (``register_solver("greedy", fn)``) or as a
    decorator (``@register_solver("greedy")``).  Re-registering a name
    replaces the previous solver, which lets callers shadow a built-in
    strategy with a tuned variant.
    """
    if not name or not isinstance(name, str):
        raise ConfigurationError("solver strategy name must be a non-empty string")

    def _register(fn: SolverFn) -> SolverFn:
        _REGISTRY[name] = fn
        return fn

    if solver is None:
        return _register
    return _register(solver)


def get_solver(name: str) -> SolverFn:
    """The solver registered as ``name``.

    Raises :class:`ConfigurationError` listing the valid strategies
    when the name is unknown.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown strategy {name!r}; choose from {sorted(_REGISTRY)}"
        ) from None


def available_strategies() -> Tuple[str, ...]:
    """All registered strategy names, sorted."""
    return tuple(sorted(_REGISTRY))
