"""Simple Plant Location Problem with Preference Orderings (SPLPO).

The paper maps anycast configuration search onto SPLPO (S3.4, Appendix
B): facilities are anycast sites, clients are target networks with a
total preference order over sites, costs are RTTs, and a client is
always served by its most preferred *open* facility — not its cheapest.
The problem (and even approximating its optimum) is NP-hard
(Theorem B.1), so this package offers exact enumeration for small
instances and greedy / local-search / annealing heuristics for larger
ones.
"""

from repro.splpo.model import Client, SolveResult, SPLPOInstance
from repro.splpo.exhaustive import solve_exhaustive
from repro.splpo.greedy import solve_greedy
from repro.splpo.local_search import solve_local_search
from repro.splpo.annealing import solve_annealing
from repro.splpo.reduction import dominating_set_to_splpo
from repro.splpo.registry import (
    available_strategies,
    get_solver,
    register_solver,
)


# The built-in solvers self-register under their strategy names.  Each
# adapter maps the uniform registry signature onto the solver's own
# keywords, dropping the ones that do not apply (e.g. ``sizes`` only
# restricts exhaustive enumeration).

@register_solver("exhaustive")
def _exhaustive_strategy(instance, *, seed=0, sizes=None, max_evaluations=None, **kwargs):
    """Registry adapter for :func:`solve_exhaustive`."""
    return solve_exhaustive(
        instance, sizes=sizes, max_evaluations=max_evaluations, **kwargs
    )


@register_solver("greedy")
def _greedy_strategy(instance, *, seed=0, sizes=None, max_evaluations=None, **kwargs):
    """Registry adapter for :func:`solve_greedy`."""
    return solve_greedy(instance, **kwargs)


@register_solver("local_search")
def _local_search_strategy(instance, *, seed=0, sizes=None, max_evaluations=None, **kwargs):
    """Registry adapter for :func:`solve_local_search`."""
    return solve_local_search(instance, **kwargs)


@register_solver("annealing")
def _annealing_strategy(instance, *, seed=0, sizes=None, max_evaluations=None, **kwargs):
    """Registry adapter for :func:`solve_annealing`."""
    return solve_annealing(instance, seed=seed, **kwargs)


__all__ = [
    "Client",
    "SPLPOInstance",
    "SolveResult",
    "available_strategies",
    "dominating_set_to_splpo",
    "get_solver",
    "register_solver",
    "solve_annealing",
    "solve_exhaustive",
    "solve_greedy",
    "solve_local_search",
]
