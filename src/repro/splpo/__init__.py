"""Simple Plant Location Problem with Preference Orderings (SPLPO).

The paper maps anycast configuration search onto SPLPO (S3.4, Appendix
B): facilities are anycast sites, clients are target networks with a
total preference order over sites, costs are RTTs, and a client is
always served by its most preferred *open* facility — not its cheapest.
The problem (and even approximating its optimum) is NP-hard
(Theorem B.1), so this package offers exact enumeration for small
instances and greedy / local-search / annealing heuristics for larger
ones.
"""

from repro.splpo.model import Client, SolveResult, SPLPOInstance
from repro.splpo.exhaustive import solve_exhaustive
from repro.splpo.greedy import solve_greedy
from repro.splpo.local_search import solve_local_search
from repro.splpo.annealing import solve_annealing
from repro.splpo.reduction import dominating_set_to_splpo

__all__ = [
    "Client",
    "SPLPOInstance",
    "SolveResult",
    "dominating_set_to_splpo",
    "solve_annealing",
    "solve_exhaustive",
    "solve_greedy",
    "solve_local_search",
]
