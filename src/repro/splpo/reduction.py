"""The Dominating-Set-to-SPLPO reduction of Theorem B.1.

Given a graph ``G`` and budget ``K``, the reduction builds an SPLPO
instance in which a zero-cost solution opening ``K + 1`` facilities
exists iff ``G`` has a dominating set of size ``K``.  It both proves
SPLPO NP-hard and gives the test suite a ground-truth oracle: solving
the reduced instance solves dominating set.
"""

from typing import Dict, Hashable, Iterable, List, Sequence, Tuple

from repro.splpo.model import Client, SPLPOInstance
from repro.util.errors import ConfigurationError

#: Stand-in for the reduction's "infinite" distance; any solution
#: paying it is equivalent to an infeasible one.
FAR_COST = 1.0e12

#: Facility id of the far-away site ``s*`` with its private client.
STAR_FACILITY = -1
STAR_CLIENT = -1


def dominating_set_to_splpo(
    vertices: Sequence[Hashable],
    edges: Iterable[Tuple[Hashable, Hashable]],
) -> SPLPOInstance:
    """Build the Theorem B.1 instance for graph ``(vertices, edges)``.

    Every vertex ``v`` becomes a co-located client/facility pair with
    distance zero; a far site ``s*`` with private client ``c*`` is
    added.  Client ``c_v`` prefers ``s_v``, then its neighbors' sites,
    then ``s*``, then everything else.  A zero-cost solution with
    ``K + 1`` open facilities must open ``s*`` plus a dominating set.
    """
    verts = list(vertices)
    if not verts:
        raise ConfigurationError("dominating set reduction needs vertices")
    index: Dict[Hashable, int] = {v: i for i, v in enumerate(verts)}
    adjacency: Dict[int, List[int]] = {i: [] for i in range(len(verts))}
    for a, b in edges:
        if a not in index or b not in index:
            raise ConfigurationError(f"edge ({a}, {b}) references unknown vertex")
        if a == b:
            continue
        ia, ib = index[a], index[b]
        if ib not in adjacency[ia]:
            adjacency[ia].append(ib)
            adjacency[ib].append(ia)

    facilities = list(range(len(verts))) + [STAR_FACILITY]
    clients: List[Client] = []
    for i in range(len(verts)):
        preference = [i] + sorted(adjacency[i]) + [STAR_FACILITY]
        others = [j for j in range(len(verts)) if j != i and j not in adjacency[i]]
        preference += others
        costs = {j: FAR_COST for j in facilities}
        costs[i] = 0.0
        # Serving a client from a neighbor's site is also "at" the
        # vertex for domination purposes: zero cost.
        for j in adjacency[i]:
            costs[j] = 0.0
        costs[STAR_FACILITY] = FAR_COST
        clients.append(Client(client_id=i, preference=tuple(preference), costs=costs))
    star_costs = {j: FAR_COST for j in facilities}
    star_costs[STAR_FACILITY] = 0.0
    clients.append(
        Client(
            client_id=STAR_CLIENT,
            preference=(STAR_FACILITY,) + tuple(range(len(verts))),
            costs=star_costs,
        )
    )
    return SPLPOInstance(facilities=facilities, clients=clients)
