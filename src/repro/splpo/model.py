"""SPLPO problem model and assignment evaluation.

The defining constraint (Appendix B, equation 6): each client is served
by its most-preferred open facility, regardless of cost.  The optimizer
only controls *which* facilities open.
"""

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.util.errors import ConfigurationError, ReproError

try:  # numpy accelerates subset enumeration but is optional
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in CI
    _np = None


@dataclass(frozen=True)
class Client:
    """One SPLPO client.

    Attributes:
        client_id: identifier (a target id in the anycast mapping).
        preference: facility ids, most preferred first; the client is
            served by the first open facility in this list.
        costs: service cost per facility (RTT in the anycast mapping).
        weight: multiplier on the client's cost in the objective
            (e.g. query volume).
        load: load the client imposes on its serving facility, used by
            capacity constraints.
    """

    client_id: int
    preference: Tuple[int, ...]
    costs: Mapping[int, float]
    weight: float = 1.0
    load: float = 1.0

    def __post_init__(self):
        if not self.preference:
            raise ConfigurationError(f"client {self.client_id}: empty preference")
        if len(set(self.preference)) != len(self.preference):
            raise ConfigurationError(f"client {self.client_id}: duplicate preferences")
        missing = [f for f in self.preference if f not in self.costs]
        if missing:
            raise ConfigurationError(
                f"client {self.client_id}: no cost for facilities {missing}"
            )


@dataclass(frozen=True)
class SolveResult:
    """Outcome of a solver run."""

    open_facilities: FrozenSet[int]
    cost: float
    evaluations: int
    solver: str


class SPLPOInstance:
    """An SPLPO instance with optional facility capacities."""

    def __init__(
        self,
        facilities: Sequence[int],
        clients: Sequence[Client],
        open_costs: Optional[Mapping[int, float]] = None,
        capacities: Optional[Mapping[int, float]] = None,
    ):
        if len(set(facilities)) != len(facilities):
            raise ConfigurationError("duplicate facilities")
        self.facilities: Tuple[int, ...] = tuple(facilities)
        self.clients: Tuple[Client, ...] = tuple(clients)
        self.open_costs: Dict[int, float] = dict(open_costs or {})
        self.capacities: Optional[Dict[int, float]] = (
            dict(capacities) if capacities is not None else None
        )
        facility_set = set(self.facilities)
        for client in self.clients:
            unknown = [f for f in client.preference if f not in facility_set]
            if unknown:
                raise ConfigurationError(
                    f"client {client.client_id} prefers unknown facilities {unknown}"
                )
        self._index = {f: i for i, f in enumerate(self.facilities)}
        self._rank_matrix = None
        self._cost_matrix = None

    # -- assignment -----------------------------------------------------------

    def assignment(self, open_facilities: Iterable[int]) -> Dict[int, Optional[int]]:
        """client id -> serving facility (None when no open facility
        appears in the client's preference list)."""
        open_set = set(open_facilities)
        out: Dict[int, Optional[int]] = {}
        for client in self.clients:
            out[client.client_id] = next(
                (f for f in client.preference if f in open_set), None
            )
        return out

    def cost(self, open_facilities: Iterable[int], unserved_penalty: float = math.inf) -> float:
        """Total weighted cost of a facility subset.

        Infeasible subsets (capacity exceeded, or a client unserved
        with an infinite penalty) return ``math.inf``.
        """
        open_set = frozenset(open_facilities)
        if not open_set:
            return math.inf
        unknown = open_set - set(self.facilities)
        if unknown:
            raise ConfigurationError(f"unknown facilities {sorted(unknown)}")
        total = sum(self.open_costs.get(f, 0.0) for f in open_set)
        loads: Dict[int, float] = {f: 0.0 for f in open_set}
        for client in self.clients:
            facility = next((f for f in client.preference if f in open_set), None)
            if facility is None:
                if math.isinf(unserved_penalty):
                    return math.inf
                total += client.weight * unserved_penalty
                continue
            total += client.weight * client.costs[facility]
            loads[facility] += client.load
        if self.capacities is not None:
            for f, load in loads.items():
                if load > self.capacities.get(f, math.inf):
                    return math.inf
        return total

    def mean_cost(self, open_facilities: Iterable[int]) -> float:
        """Average (unweighted by ``weight``) served-client cost."""
        open_set = frozenset(open_facilities)
        costs: List[float] = []
        for client in self.clients:
            facility = next((f for f in client.preference if f in open_set), None)
            if facility is not None:
                costs.append(client.costs[facility])
        if not costs:
            raise ReproError("no client is served by this facility subset")
        return sum(costs) / len(costs)

    def weighted_mean_cost(self, open_facilities: Iterable[int]) -> float:
        """Workload-weighted mean served-client cost (Appendix B's
        "weigh each host's RTT with its workload")."""
        open_set = frozenset(open_facilities)
        total = 0.0
        weight_sum = 0.0
        for client in self.clients:
            facility = next((f for f in client.preference if f in open_set), None)
            if facility is not None:
                total += client.weight * client.costs[facility]
                weight_sum += client.weight
        if weight_sum == 0.0:
            raise ReproError("no client is served by this facility subset")
        return total / weight_sum

    # -- vectorized evaluation ------------------------------------------------

    def _ensure_matrices(self):
        if self._rank_matrix is not None or _np is None:
            return
        n_f = len(self.facilities)
        n_c = len(self.clients)
        ranks = _np.full((n_c, n_f), n_f, dtype=_np.int32)
        costs = _np.full((n_c, n_f), _np.inf, dtype=_np.float64)
        weights = _np.empty(n_c, dtype=_np.float64)
        for ci, client in enumerate(self.clients):
            weights[ci] = client.weight
            for rank, f in enumerate(client.preference):
                fi = self._index[f]
                ranks[ci, fi] = rank
                costs[ci, fi] = client.costs[f]
        self._rank_matrix = ranks
        self._cost_matrix = costs
        self._weights = weights

    def fast_cost(self, open_facilities: Iterable[int], unserved_penalty: float = math.inf) -> float:
        """Vectorized :meth:`cost` (numpy); identical semantics.

        Falls back to the pure-Python path when numpy is unavailable
        or capacities are set.
        """
        if _np is None or self.capacities is not None:
            return self.cost(open_facilities, unserved_penalty)
        open_set = frozenset(open_facilities)
        if not open_set:
            return math.inf
        self._ensure_matrices()
        cols = [self._index[f] for f in open_set]
        sub_ranks = self._rank_matrix[:, cols]
        best = sub_ranks.argmin(axis=1)
        n_f = len(self.facilities)
        served = sub_ranks[_np.arange(len(self.clients)), best] < n_f
        if not served.all() and math.isinf(unserved_penalty):
            return math.inf
        picked_costs = self._cost_matrix[:, cols][_np.arange(len(self.clients)), best]
        total = float(
            (self._weights[served] * picked_costs[served]).sum()
            + self._weights[~served].sum() * (0.0 if math.isinf(unserved_penalty) else unserved_penalty)
        )
        total += sum(self.open_costs.get(f, 0.0) for f in open_set)
        return total
