"""Simulated annealing for large SPLPO instances.

Used when enumeration and deterministic local search are too slow —
e.g. a few hundred sites, the scale of the paper's Akamai DNS analysis
(S4.5).  Fully deterministic given a seed.
"""

import math
from typing import Iterable, Optional

from repro.splpo.model import SolveResult, SPLPOInstance
from repro.util.errors import ConfigurationError
from repro.util.rng import make_rng


def solve_annealing(
    instance: SPLPOInstance,
    seed=0,
    steps: int = 5000,
    start_temperature: float = 50.0,
    cooling: float = 0.995,
    start: Optional[Iterable[int]] = None,
    unserved_penalty: float = math.inf,
) -> SolveResult:
    """Anneal over facility subsets with flip moves.

    A move toggles one facility (keeping at least one open).  Worse
    moves are accepted with probability ``exp(-delta / T)``.
    """
    if steps < 1:
        raise ConfigurationError("steps must be positive")
    if not 0.0 < cooling < 1.0:
        raise ConfigurationError("cooling must be in (0, 1)")
    rng = make_rng((seed, "splpo-annealing"))
    facilities = list(instance.facilities)
    if start is None:
        current = {f for f in facilities if rng.random() < 0.5} or {facilities[0]}
    else:
        current = set(start)
        if not current:
            raise ConfigurationError("start set must be non-empty")

    current_cost = instance.fast_cost(current, unserved_penalty)
    best = frozenset(current)
    best_cost = current_cost
    evaluations = 1
    temperature = start_temperature
    for _ in range(steps):
        f = rng.choice(facilities)
        if f in current and len(current) == 1:
            continue
        candidate = set(current)
        if f in candidate:
            candidate.remove(f)
        else:
            candidate.add(f)
        cost = instance.fast_cost(candidate, unserved_penalty)
        evaluations += 1
        delta = cost - current_cost
        accept = delta < 0 or (
            not math.isinf(cost)
            and temperature > 1e-9
            and rng.random() < math.exp(-delta / temperature)
        )
        if accept:
            current = candidate
            current_cost = cost
            if cost < best_cost:
                best = frozenset(candidate)
                best_cost = cost
        temperature *= cooling
    return SolveResult(best, best_cost, evaluations, solver="annealing")
