"""Local search for SPLPO: add / drop / swap moves to a local optimum."""

import math
from typing import FrozenSet, Iterable, Optional

from repro.splpo.greedy import solve_greedy
from repro.splpo.model import SolveResult, SPLPOInstance
from repro.util.errors import ConfigurationError


def solve_local_search(
    instance: SPLPOInstance,
    start: Optional[Iterable[int]] = None,
    max_iterations: int = 1000,
    fixed_size: bool = False,
    unserved_penalty: float = math.inf,
) -> SolveResult:
    """Improve a starting subset with first-improvement moves.

    Args:
        start: initial open set (default: the greedy solution).
        fixed_size: restrict moves to swaps, preserving cardinality
            (used when the deployment size is fixed, e.g. "best
            12-site configuration").
        max_iterations: cap on improving moves.
    """
    if max_iterations < 1:
        raise ConfigurationError("max_iterations must be positive")
    evaluations = 0
    if start is None:
        seeded = solve_greedy(instance, unserved_penalty=unserved_penalty)
        current: FrozenSet[int] = seeded.open_facilities
        current_cost = seeded.cost
        evaluations += seeded.evaluations
    else:
        current = frozenset(start)
        current_cost = instance.fast_cost(current, unserved_penalty)
        evaluations += 1

    all_facilities = set(instance.facilities)
    for _ in range(max_iterations):
        improved = False
        closed = sorted(all_facilities - current)
        opened = sorted(current)
        candidates = []
        if not fixed_size:
            candidates.extend(current | {f} for f in closed)
            if len(current) > 1:
                candidates.extend(current - {f} for f in opened)
        candidates.extend(
            (current - {f_out}) | {f_in} for f_out in opened for f_in in closed
        )
        for candidate in candidates:
            cost = instance.fast_cost(candidate, unserved_penalty)
            evaluations += 1
            if cost < current_cost:
                current = frozenset(candidate)
                current_cost = cost
                improved = True
                break
        if not improved:
            break
    return SolveResult(current, current_cost, evaluations, solver="local_search")
