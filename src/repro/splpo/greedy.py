"""Greedy SPLPO heuristic: repeatedly open the facility that most
reduces total cost.

Note that with preference-ordered assignment, opening a facility can
*increase* cost (clients prefer it over cheaper open facilities) — the
very effect that makes naive anycast growth counter-productive (S2.2).
The greedy therefore stops at the first non-improving step unless a
target size forces it onward.
"""

import math
from typing import Optional

from repro.splpo.model import SolveResult, SPLPOInstance
from repro.util.errors import ConfigurationError


def solve_greedy(
    instance: SPLPOInstance,
    max_open: Optional[int] = None,
    force_size: bool = False,
    unserved_penalty: float = math.inf,
) -> SolveResult:
    """Greedy facility opening.

    Args:
        max_open: stop after opening this many facilities.
        force_size: keep opening the least-bad facility even when no
            addition improves cost, until ``max_open`` is reached
            (needed when a fixed deployment size is required).
        unserved_penalty: see :func:`~repro.splpo.exhaustive.solve_exhaustive`.
    """
    if max_open is not None and max_open < 1:
        raise ConfigurationError("max_open must be at least 1")
    limit = max_open if max_open is not None else len(instance.facilities)
    open_set: set = set()
    current = math.inf
    evaluations = 0
    while len(open_set) < limit:
        best_candidate = None
        best_cost = math.inf
        for f in instance.facilities:
            if f in open_set:
                continue
            cost = instance.fast_cost(open_set | {f}, unserved_penalty)
            evaluations += 1
            if cost < best_cost:
                best_cost = cost
                best_candidate = f
        if best_candidate is None:
            break
        if best_cost >= current and not force_size:
            break
        open_set.add(best_candidate)
        current = best_cost
    return SolveResult(frozenset(open_set), current, evaluations, solver="greedy")
