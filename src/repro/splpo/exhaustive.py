"""Exact SPLPO solving by subset enumeration.

Feasible for the paper's 15-site testbed (2^15 - 1 subsets) and for
size-restricted searches; the evaluation budget mirrors the paper's
six-hour offline computation bound (S5.3).
"""

import itertools
import math
from typing import Iterable, Optional

from repro.splpo.model import SolveResult, SPLPOInstance
from repro.util.errors import ConfigurationError


def solve_exhaustive(
    instance: SPLPOInstance,
    sizes: Optional[Iterable[int]] = None,
    max_evaluations: Optional[int] = None,
    unserved_penalty: float = math.inf,
) -> SolveResult:
    """Enumerate facility subsets and return the cheapest.

    Args:
        instance: the problem.
        sizes: restrict to subsets of these cardinalities (default:
            every non-empty size).
        max_evaluations: stop after this many subset evaluations — the
            "as many configurations as we could compute within a time
            bound" behaviour of the paper.
        unserved_penalty: per-client cost when no preferred facility is
            open (infinite by default, making such subsets infeasible).
    """
    n = len(instance.facilities)
    if n == 0:
        raise ConfigurationError("instance has no facilities")
    size_list = sorted(set(sizes)) if sizes is not None else list(range(1, n + 1))
    for k in size_list:
        if not 1 <= k <= n:
            raise ConfigurationError(f"subset size {k} out of range [1, {n}]")

    best_cost = math.inf
    best_set = frozenset()
    evaluations = 0
    done = False
    for k in size_list:
        if done:
            break
        for subset in itertools.combinations(instance.facilities, k):
            cost = instance.fast_cost(subset, unserved_penalty)
            evaluations += 1
            if cost < best_cost:
                best_cost = cost
                best_set = frozenset(subset)
            if max_evaluations is not None and evaluations >= max_evaluations:
                done = True
                break
    return SolveResult(best_set, best_cost, evaluations, solver="exhaustive")
