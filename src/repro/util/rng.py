"""Deterministic random-number helpers.

The simulator must be fully reproducible: the same seed must produce the
same topology, the same propagation delays, and therefore the same
catchments.  These helpers derive independent :class:`random.Random`
streams from a root seed and a string label, so that adding a new
consumer of randomness does not perturb existing streams.
"""

import hashlib
import random

_MASK_64 = (1 << 64) - 1


def stable_hash(*parts) -> int:
    """Return a 64-bit hash of ``parts`` that is stable across runs.

    Python's built-in :func:`hash` is salted per process for strings, so
    it cannot be used for reproducible seeding.  This helper hashes the
    ``repr`` of each part with BLAKE2b instead.

    >>> stable_hash("a", 1) == stable_hash("a", 1)
    True
    >>> stable_hash("a", 1) != stable_hash("a", 2)
    True
    """
    digest = hashlib.blake2b(digest_size=8)
    for part in parts:
        digest.update(repr(part).encode("utf-8"))
        digest.update(b"\x00")
    return int.from_bytes(digest.digest(), "big") & _MASK_64


def make_rng(seed) -> random.Random:
    """Return a fresh :class:`random.Random` seeded with ``seed``.

    ``seed`` may be any hashable object; non-integers are reduced with
    :func:`stable_hash` first.
    """
    if not isinstance(seed, int):
        seed = stable_hash(seed)
    return random.Random(seed)


def derive_rng(root_seed, *labels) -> random.Random:
    """Derive an independent RNG stream from ``root_seed`` and labels.

    Two calls with the same arguments return identically-seeded streams;
    different labels give statistically independent streams.

    >>> a = derive_rng(7, "delays")
    >>> b = derive_rng(7, "delays")
    >>> a.random() == b.random()
    True
    """
    return random.Random(stable_hash(root_seed, *labels))
