"""Exception hierarchy for the repro package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single except clause while
still distinguishing subsystems when they need to.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class TopologyError(ReproError):
    """An AS-level or router-level topology is malformed or inconsistent.

    Raised, for example, when an edge references an unknown AS, when an
    AS is given two conflicting relationships with the same neighbor, or
    when a generated topology fails its structural invariants.
    """


class ConfigurationError(ReproError):
    """An anycast configuration is invalid.

    Raised when a configuration enables a site that does not exist,
    enables zero sites, or pairs a site with a provider it does not
    connect to.
    """


class ConvergenceBudgetError(ReproError):
    """A BGP convergence run exhausted its event budget.

    Gao-Rexford policies guarantee convergence, so hitting the budget
    means either a topology far larger than the configured cap (raise
    ``CampaignSettings.max_convergence_events``) or a genuine policy
    bug producing an oscillation.  The census attributes let the
    operator tell the two apart without rerunning under a debugger:
    a run touching nearly every AS with ever-growing virtual time is
    an oscillation; one that merely ran out of headroom touches a
    bounded set.

    Attributes:
        budget: the event cap that was exhausted.
        events: events processed when the run was aborted (the first
            census to exceed the budget; in delta mode this includes
            the reconstructed deliveries to aggregated stubs, so it can
            land past ``budget + 1``).
        ases_touched: distinct ASes that had received at least one event.
        virtual_time_ms: the virtual clock at the aborting event.
    """

    def __init__(self, budget: int, events: int, ases_touched: int, virtual_time_ms: float):
        self.budget = budget
        self.events = events
        self.ases_touched = ases_touched
        self.virtual_time_ms = virtual_time_ms
        super().__init__(
            f"BGP event budget exhausted ({events} events > budget {budget}; "
            f"{ases_touched} ASes touched, virtual time {virtual_time_ms:.1f} ms); "
            "the configuration did not converge"
        )


class MeasurementError(ReproError):
    """A measurement could not be carried out.

    Raised when an experiment is asked to probe targets while no site is
    announcing, or when too few ICMP replies survive loss to produce a
    valid RTT sample.
    """


class TransientError(MeasurementError):
    """A retryable, transient campaign failure.

    Raised by the fault-injection layer (:mod:`repro.runtime.faults`)
    for the failure modes a days-long real-Internet campaign sees —
    announcement failures, convergence timeouts, probe blackouts,
    orchestrator-session resets.  :func:`repro.runtime.retry.run_with_retry`
    retries these with exponential backoff (in virtual time); anything
    else propagates immediately.

    ``fault_kind`` identifies which injected failure mode a subclass
    models (the :data:`repro.runtime.faults.FAULT_KINDS` vocabulary);
    None for transient errors with no fault identity.
    """

    fault_kind = None


class RetriesExhaustedError(MeasurementError):
    """An operation kept failing transiently until its retry budget ran out.

    Campaign drivers catch this (and any other
    :class:`MeasurementError`) per experiment, record a typed
    ``FailedExperiment``, and degrade gracefully instead of aborting
    the whole campaign.
    """

    def __init__(self, description: str, attempts: int, last_error=None):
        self.description = description
        self.attempts = attempts
        self.last_error = last_error
        detail = f": {last_error}" if last_error is not None else ""
        super().__init__(
            f"{description} failed after {attempts} attempt(s){detail}"
        )

    @property
    def fault_kind(self):
        """The final attempt's fault kind (e.g. ``"probe-blackout"``),
        or None when the last error carried no fault identity."""
        return getattr(self.last_error, "fault_kind", None)
