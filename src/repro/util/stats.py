"""Small statistics helpers used across measurements and benchmarks.

These mirror the aggregations the paper reports: medians of repeated
probes (S3), mean RTTs per configuration (S5.2), CDFs over targets
(Figures 5-7), and relative prediction errors (Figure 5c).
"""

import math


def mean(values):
    """Arithmetic mean of a non-empty sequence.

    >>> mean([1.0, 2.0, 3.0])
    2.0
    """
    values = list(values)
    if not values:
        raise ValueError("mean() of empty sequence")
    return sum(values) / len(values)


def median(values):
    """Median of a non-empty sequence (average of middle two if even).

    The paper uses the median of seven ICMP samples to filter outliers
    (S3, "Measuring RTTs").

    >>> median([5, 1, 3])
    3
    >>> median([1, 2, 3, 4])
    2.5
    """
    ordered = sorted(values)
    if not ordered:
        raise ValueError("median() of empty sequence")
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def percentile(values, q):
    """Linear-interpolation percentile, ``q`` in [0, 100].

    >>> percentile([0, 10], 50)
    5.0
    """
    ordered = sorted(values)
    if not ordered:
        raise ValueError("percentile() of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError("percentile q must be within [0, 100]")
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return float(ordered[low])
    frac = rank - low
    return ordered[low] * (1 - frac) + ordered[high] * frac


def relative_error(predicted, actual):
    """Absolute relative error ``|predicted - actual| / |actual|``.

    >>> relative_error(11.0, 10.0)
    0.1
    """
    if actual == 0:
        raise ValueError("relative_error() undefined for actual == 0")
    return abs(predicted - actual) / abs(actual)


def cdf_points(values):
    """Return ``(sorted_values, cumulative_fractions)`` for a CDF plot.

    The i-th fraction is ``(i + 1) / n``, i.e. the fraction of samples
    less than or equal to the i-th sorted value.

    >>> cdf_points([3, 1, 2])
    ([1, 2, 3], [0.3333333333333333, 0.6666666666666666, 1.0])
    """
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        raise ValueError("cdf_points() of empty sequence")
    return ordered, [(i + 1) / n for i in range(n)]


def summarize(values):
    """Return a dict with mean / median / p10 / p90 / min / max.

    Convenient for printing benchmark rows.
    """
    values = list(values)
    return {
        "n": len(values),
        "mean": mean(values),
        "median": median(values),
        "p10": percentile(values, 10),
        "p90": percentile(values, 90),
        "min": min(values),
        "max": max(values),
    }
