"""Shared utilities: deterministic RNG, statistics, and validation errors.

Everything in :mod:`repro` that needs randomness takes an explicit seed or
an explicit :class:`random.Random` instance; nothing reads global RNG
state.  The helpers here keep that discipline convenient.
"""

from repro.util.errors import (
    ConfigurationError,
    MeasurementError,
    ReproError,
    TopologyError,
)
from repro.util.rng import derive_rng, make_rng, stable_hash
from repro.util.stats import (
    cdf_points,
    mean,
    median,
    percentile,
    relative_error,
    summarize,
)

__all__ = [
    "ConfigurationError",
    "MeasurementError",
    "ReproError",
    "TopologyError",
    "cdf_points",
    "derive_rng",
    "make_rng",
    "mean",
    "median",
    "percentile",
    "relative_error",
    "stable_hash",
    "summarize",
]
