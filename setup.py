"""Compatibility shim so `pip install -e .` works without the `wheel`
package (offline environments with older setuptools)."""

from setuptools import setup

setup()
